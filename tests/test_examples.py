"""Smoke tests: the shipped examples must run clean end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "corrections performed: 1" in out
        assert "tamper detected" in out

    def test_error_correction(self, capsys):
        out = run_example("error_correction.py", capsys)
        assert "G_max = 372" in out
        assert "DETECTED (uncorrectable)" in out
        assert out.count("corrected") >= 6

    def test_privilege_escalation(self, capsys):
        out = run_example("privilege_escalation.py", capsys)
        assert "KERNEL MEMORY STOLEN" in out
        assert "Invariant held" in out

    def test_rowhammer_lab(self, capsys):
        out = run_example("rowhammer_lab.py", capsys)
        assert "victim flips = 0" in out  # the defended / undefended-d2 cases
        assert "LPDDR4-2020" in out

    @pytest.mark.parametrize(
        "name",
        ["quickstart.py", "privilege_escalation.py", "defense_comparison.py",
         "error_correction.py", "performance_study.py", "rowhammer_lab.py"],
    )
    def test_all_examples_compile(self, name):
        source = (EXAMPLES / name).read_text()
        compile(source, name, "exec")
