"""Tests for configuration dataclasses and statistics counters."""

import pytest

from repro.common.config import (
    CacheConfig,
    DRAMConfig,
    PTGuardConfig,
    SystemConfig,
    optimized_ptguard_config,
)
from repro.common.errors import ConfigurationError
from repro.common.stats import StatGroup, per_kilo, ratio


class TestTable3Defaults:
    """The baseline configuration of paper Table III."""

    def test_core(self):
        config = SystemConfig()
        assert config.frequency_hz == 3_000_000_000

    def test_tlb(self):
        config = SystemConfig()
        assert config.tlb.entries == 64
        assert config.tlb.mmu_cache_bytes == 8 * 1024
        assert config.tlb.mmu_cache_assoc == 4

    def test_caches(self):
        config = SystemConfig()
        assert config.l1d.size_bytes == 32 * 1024 and config.l1d.associativity == 8
        assert config.l2.size_bytes == 256 * 1024 and config.l2.associativity == 16
        assert config.l3.size_bytes == 2 * 1024 * 1024 and config.l3.associativity == 16

    def test_dram(self):
        config = SystemConfig()
        assert config.dram.size_bytes == 4 * 2**30

    def test_baseline_has_no_guard(self):
        assert SystemConfig().ptguard is None

    def test_with_ptguard(self):
        config = SystemConfig().with_ptguard(PTGuardConfig())
        assert config.ptguard is not None


class TestPTGuardConfig:
    def test_defaults_match_paper(self):
        config = PTGuardConfig()
        assert config.max_phys_bits == 40  # 1 TB client bound
        assert config.mac_bits == 96
        assert config.mac_latency_cycles == 10
        assert config.soft_match_k == 4
        assert config.ctb_entries == 4
        assert config.almost_zero_threshold == 4

    def test_optimized_factory(self):
        config = optimized_ptguard_config()
        assert config.identifier_enabled and config.mac_zero_enabled

    def test_phys_bits_bounds(self):
        with pytest.raises(ConfigurationError):
            PTGuardConfig(max_phys_bits=20)

    def test_mac_bits_restricted(self):
        with pytest.raises(ConfigurationError):
            PTGuardConfig(mac_bits=17)
        PTGuardConfig(mac_bits=64)  # the Sec VII-A option

    def test_soft_match_bounds(self):
        with pytest.raises(ConfigurationError):
            PTGuardConfig(soft_match_k=96)


class TestDRAMConfig:
    def test_rows_per_bank(self):
        config = DRAMConfig()
        expected = 4 * 2**30 // (16 * 8192)
        assert config.rows_per_bank == expected

    def test_pow2_enforced(self):
        with pytest.raises(ConfigurationError):
            DRAMConfig(banks=12)


class TestCacheConfig:
    def test_num_sets(self):
        assert CacheConfig("x", 32 * 1024, 8, 4).num_sets == 64

    def test_non_pow2_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("x", 3 * 64 * 2, 2, 1)


class TestStats:
    def test_lazy_counters(self):
        group = StatGroup("g")
        assert group.get("missing") == 0
        group.increment("hits")
        group.increment("hits", 4)
        assert group.get("hits") == 5

    def test_as_dict_sorted(self):
        group = StatGroup("g")
        group.increment("b")
        group.increment("a")
        assert list(group.as_dict()) == ["a", "b"]

    def test_reset(self):
        group = StatGroup("g")
        group.increment("x", 7)
        group.reset()
        assert group.get("x") == 0

    def test_ratio_helpers(self):
        assert ratio(1, 2) == 0.5
        assert ratio(1, 0) == 0.0
        assert per_kilo(5, 1000) == 5.0
