"""Batched execution is bit-identical to the scalar reference path.

Derandomized hypothesis property tests (same discipline as
``test_property_roundtrips.py``: the example sequence is a pure function
of the test code, so CI runs are byte-for-byte repeatable) covering the
three vectorized layers — batched QARMA MACs, the vectorized trace-RNG
replay, and the fused batch execution core — plus a chaos+validate
fault-injection campaign regression that pushes fault injection,
runtime invariants and recovery through the batched core.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import optimized_ptguard_config
from repro.cpu.trace import TraceGenerator
from repro.cpu.trace_vector import HAVE_NUMPY, VectorTraceReplayer
from repro.cpu.workloads import WORKLOADS, get_workload
from repro.crypto.mac import make_line_mac
from repro.harness.system import build_system

DERANDOMIZED = settings(derandomize=True, max_examples=200, deadline=None)
#: For properties whose single example builds a full system (expensive).
DERANDOMIZED_SMALL = settings(derandomize=True, max_examples=6, deadline=None)

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="vectorized paths need numpy"
)

HOT_BASE = 1 << 30
COLD_BASE = 1 << 35


class _batch_env:
    """Pin ``REPRO_BATCH`` for a block, restoring the ambient value."""

    def __init__(self, batch: int):
        self.batch = batch

    def __enter__(self):
        self.previous = os.environ.get("REPRO_BATCH")
        os.environ["REPRO_BATCH"] = str(self.batch)

    def __exit__(self, *exc):
        if self.previous is None:
            os.environ.pop("REPRO_BATCH", None)
        else:
            os.environ["REPRO_BATCH"] = self.previous


# -- batched QARMA MACs -------------------------------------------------------

#: One shared backend: compute() must be a pure function of (line,
#: address), so reuse across examples is itself part of the property.
_QARMA = make_line_mac("qarma", b"batch-equivalence-secret")

_cells = st.lists(
    st.tuples(
        st.binary(min_size=64, max_size=64),
        st.integers(min_value=0, max_value=(1 << 34) - 1).map(
            lambda index: index * 64
        ),
    ),
    min_size=1,
    max_size=16,
)


class TestQarmaBatch:
    @needs_numpy
    @DERANDOMIZED
    @given(cells=_cells)
    def test_compute_batch_matches_scalar_compute(self, cells):
        lines = [line for line, _ in cells]
        addresses = [address for _, address in cells]
        batched = _QARMA.compute_batch(lines, addresses)
        scalar = [
            _QARMA.compute(line, address)
            for line, address in zip(lines, addresses)
        ]
        assert [int(tag) for tag in batched] == scalar

    @needs_numpy
    def test_empty_batch(self):
        assert list(_QARMA.compute_batch([], [])) == []


# -- vectorized trace replay --------------------------------------------------


def _twin_generators(profile_index: int, seed: int):
    profile = WORKLOADS[profile_index]
    scalar = TraceGenerator(profile, HOT_BASE, COLD_BASE, seed=seed)
    vector = TraceGenerator(profile, HOT_BASE, COLD_BASE, seed=seed)
    return scalar, vector


class TestVectorTraceReplay:
    @needs_numpy
    @DERANDOMIZED
    @given(
        profile_index=st.integers(min_value=0, max_value=len(WORKLOADS) - 1),
        seed=st.integers(min_value=0, max_value=1 << 16),
        sizes=st.lists(
            st.integers(min_value=1, max_value=257), min_size=1, max_size=3
        ),
    )
    def test_batches_replay_the_scalar_stream(self, profile_index, seed, sizes):
        scalar, vector = _twin_generators(profile_index, seed)
        replayer = VectorTraceReplayer(vector)
        for n in sizes:
            instr, addr, write = replayer.next_batch(n)
            expected = [scalar.next_record() for _ in range(n)]
            assert list(zip(instr, addr, write)) == [
                tuple(record) for record in expected
            ]
            # A completed batch leaves the generator positioned exactly
            # where scalar replay would: same RNG state, same cursor.
            assert vector._rng.getstate() == scalar._rng.getstate()
            assert vector._cold_cursor == scalar._cold_cursor

    @needs_numpy
    @DERANDOMIZED
    @given(
        profile_index=st.integers(min_value=0, max_value=len(WORKLOADS) - 1),
        seed=st.integers(min_value=0, max_value=1 << 16),
        n=st.integers(min_value=1, max_value=200),
        data=st.data(),
    )
    def test_rewind_to_restores_any_record_boundary(
        self, profile_index, seed, n, data
    ):
        scalar, vector = _twin_generators(profile_index, seed)
        replayer = VectorTraceReplayer(vector)
        batch = replayer.next_batch(n)
        cut = data.draw(st.integers(min_value=0, max_value=n), label="cut")
        replayer.rewind_to(cut)
        # Scalar drains the whole batch; the rewound generator redraws
        # the tail from record ``cut`` — the streams must reconverge.
        records = [scalar.next_record() for _ in range(n)]
        tail = [tuple(vector.next_record()) for _ in range(n - cut)]
        assert tail == [tuple(record) for record in records[cut:]]
        assert vector._rng.getstate() == scalar._rng.getstate()

    @needs_numpy
    @DERANDOMIZED
    @given(
        profile_index=st.integers(min_value=0, max_value=len(WORKLOADS) - 1),
        seed=st.integers(min_value=0, max_value=1 << 16),
        n=st.integers(min_value=1, max_value=120),
    )
    def test_rewind_to_record_zero_undoes_the_whole_batch(
        self, profile_index, seed, n
    ):
        # rewind_to(0) = "the batch never happened": the generator must
        # re-emit every record bit-identically to a fresh scalar twin.
        scalar, vector = _twin_generators(profile_index, seed)
        replayer = VectorTraceReplayer(vector)
        replayer.next_batch(n)
        replayer.rewind_to(0)
        assert vector._rng.getstate() == scalar._rng.getstate()
        assert vector._cold_cursor == scalar._cold_cursor
        redraw = [tuple(vector.next_record()) for _ in range(n)]
        assert redraw == [tuple(scalar.next_record()) for _ in range(n)]

    @needs_numpy
    @DERANDOMIZED
    @given(
        profile_index=st.integers(min_value=0, max_value=len(WORKLOADS) - 1),
        seed=st.integers(min_value=0, max_value=1 << 16),
        n=st.integers(min_value=1, max_value=120),
    )
    def test_rewind_after_zero_length_batch(self, profile_index, seed, n):
        # A zero-length batch consumes nothing; rewinding to its only
        # boundary (0) must be a no-op, before and after real traffic.
        scalar, vector = _twin_generators(profile_index, seed)
        replayer = VectorTraceReplayer(vector)
        replayer.next_batch(0)
        replayer.rewind_to(0)
        assert vector._rng.getstate() == scalar._rng.getstate()
        stream = [tuple(vector.next_record()) for _ in range(n)]
        assert stream == [tuple(scalar.next_record()) for _ in range(n)]
        assert vector._cold_cursor == scalar._cold_cursor

    @needs_numpy
    @DERANDOMIZED
    @given(
        profile_index=st.integers(min_value=0, max_value=len(WORKLOADS) - 1),
        seed=st.integers(min_value=0, max_value=1 << 16),
        n=st.integers(min_value=2, max_value=120),
        data=st.data(),
    )
    def test_double_rewind_to_same_boundary_is_idempotent(
        self, profile_index, seed, n, data
    ):
        # Rewinding twice to one boundary (fault handler retried) must
        # land on exactly the same generator state as rewinding once.
        scalar, vector = _twin_generators(profile_index, seed)
        replayer = VectorTraceReplayer(vector)
        replayer.next_batch(n)
        cut = data.draw(st.integers(min_value=0, max_value=n - 1), label="cut")
        replayer.rewind_to(cut)
        once = (vector._rng.getstate(), vector._cold_cursor)
        replayer.rewind_to(cut)
        assert (vector._rng.getstate(), vector._cold_cursor) == once
        records = [scalar.next_record() for _ in range(n)]
        tail = [tuple(vector.next_record()) for _ in range(n - cut)]
        assert tail == [tuple(record) for record in records[cut:]]
        assert vector._rng.getstate() == scalar._rng.getstate()


# -- fused batch execution core ----------------------------------------------


def _core_snapshot(batch, mac, workload, mem_ops, warmup, verify_cache_entries=1024):
    with _batch_env(batch):
        config = replace(
            optimized_ptguard_config(),
            mac_verify_cache_entries=verify_cache_entries,
        )
        system = build_system(ptguard=config, mac_algorithm=mac, seed=2023)
        process, trace = system.workload_process(
            get_workload(workload), seed=11
        )
        core = system.new_core(process)
        core.prefault(trace)
        result = core.run(trace, mem_ops=mem_ops, warmup_ops=warmup)
        guard = system.controller.ptguard
        return {
            "result": result,
            "cycles": core.cycles,
            "instructions": core.instructions,
            "hierarchy_cycle": core.hierarchy.cycle,
            "hier": core.hierarchy.stats.as_dict(),
            "l1": core.hierarchy.l1.stats.as_dict(),
            "l2": core.hierarchy.l2.stats.as_dict(),
            "tlb": core.walker.tlb.stats.as_dict(),
            "walker": core.walker.stats.as_dict(),
            "engine": guard.engine.stats.as_dict(),
            "rng": trace._rng.getstate(),
            "tail": [tuple(trace.next_record()) for _ in range(3)],
        }


class TestBatchedCore:
    @needs_numpy
    @DERANDOMIZED_SMALL
    @given(
        mac=st.sampled_from(["pseudo", "blake2"]),
        workload=st.sampled_from(["xalancbmk", "povray"]),
        mem_ops=st.integers(min_value=1, max_value=400),
        warmup=st.integers(min_value=0, max_value=120),
        batch=st.sampled_from([2, 7, 64, 4096]),
    )
    def test_line_ops_counters_and_results_match_scalar(
        self, mac, workload, mem_ops, warmup, batch
    ):
        scalar = _core_snapshot(1, mac, workload, mem_ops, warmup)
        batched = _core_snapshot(batch, mac, workload, mem_ops, warmup)
        assert batched == scalar

    @needs_numpy
    def test_qarma_bulk_hints_no_verify_cache_matches_scalar(self):
        # With the verify cache disabled, mid-batch PTE-line MAC checks
        # resolve through the bulk-tag hints primed by the batched core;
        # every counter (including ``computations``) must still match the
        # scalar walker exactly.
        scalar = _core_snapshot(
            1, "qarma", "xalancbmk", 400, 60, verify_cache_entries=0
        )
        batched = _core_snapshot(
            4096, "qarma", "xalancbmk", 400, 60, verify_cache_entries=0
        )
        assert batched == scalar

    @needs_numpy
    def test_walk_heavy_profile_matches_scalar(self):
        # The synthetic TLB-thrashing profile drives the inline-walk path
        # hard (nearly every access walks); scalar equivalence here is
        # the correctness side of the BENCH_hotpath walk-heavy speedup.
        scalar = _core_snapshot(1, "blake2", "walkheavy", 400, 0)
        batched = _core_snapshot(4096, "blake2", "walkheavy", 400, 0)
        assert batched == scalar


# -- sampled batched-vs-scalar differential oracle ----------------------------


class TestReplayOracle:
    """Under ``--validate`` the batch core arms a sampled differential
    oracle (``cpu/batch_core.TraceReplayOracle``) that re-draws every
    Nth batch with an independent scalar generator clone."""

    def _validated(self):
        from repro.faults import invariants

        invariants.set_validation(True)
        return invariants

    @needs_numpy
    def test_clean_run_is_checked_and_silent(self):
        from repro.cpu import batch_core

        invariants = self._validated()
        try:
            before = dict(batch_core.ORACLE_STATS.as_dict())
            snapshot = _core_snapshot(64, "pseudo", "povray", 500, 100)
        finally:
            invariants.set_validation(None)
        after = batch_core.ORACLE_STATS.as_dict()
        assert after.get("batches_checked", 0) > before.get("batches_checked", 0)
        assert after.get("violations", 0) == before.get("violations", 0)
        # The oracle's clone never touches the live generator: the
        # validated run is bit-identical to the unvalidated scalar one.
        assert snapshot == _core_snapshot(1, "pseudo", "povray", 500, 100)

    @needs_numpy
    def test_corrupted_batch_is_caught(self):
        from repro.common.errors import InvariantViolation
        from repro.cpu.batch_core import TraceReplayOracle

        trace = TraceGenerator(WORKLOADS[0], HOT_BASE, COLD_BASE, seed=7)
        oracle = TraceReplayOracle(trace)
        replayer = VectorTraceReplayer(trace)
        before = oracle.snapshot()
        instr, addr, write = replayer.next_batch(32)
        addr = list(addr)
        addr[5] ^= 64  # one mis-parsed address in an otherwise good batch
        with pytest.raises(InvariantViolation, match="batched record 5"):
            oracle.verify(before, (instr, addr, write))

    @needs_numpy
    def test_post_batch_state_divergence_is_caught(self):
        from repro.common.errors import InvariantViolation
        from repro.cpu.batch_core import TraceReplayOracle

        trace = TraceGenerator(WORKLOADS[0], HOT_BASE, COLD_BASE, seed=7)
        oracle = TraceReplayOracle(trace)
        replayer = VectorTraceReplayer(trace)
        before = oracle.snapshot()
        batch = replayer.next_batch(32)
        trace.next_record()  # live generator drifts past the batch boundary
        with pytest.raises(InvariantViolation, match="state diverged"):
            oracle.verify(before, batch)


# -- chaos + validate campaign through the batched core -----------------------


class TestChaosValidateCampaign:
    """Fault injection, ``--validate`` invariants and recovery must all
    operate (and agree with the scalar path) under batching: campaign
    cells inject mid-trial faults — exceptions unwind the fused loop —
    while the runtime invariant checker cross-checks every outcome."""

    SCENARIOS = ("pte_single", "mac_single", "burst")
    TRIALS = 6

    def _campaign(self, batch, workers=1, cache=None, policy=None):
        from repro.analysis.fault_matrix import (
            format_fault_matrix,
            run_fault_matrix,
        )
        from repro.harness.parallel import execution_policy, get_execution_policy
        from repro.recovery.policy import recovery_policy

        with _batch_env(batch):
            with execution_policy(policy or get_execution_policy()):
                result = run_fault_matrix(
                    scenarios=self.SCENARIOS,
                    trials_per_cell=self.TRIALS,
                    validate=True,
                    workers=workers,
                    cache=cache,
                    recovery=recovery_policy("full").as_params(),
                )
        return format_fault_matrix(result)

    def test_batched_campaign_matches_scalar(self):
        assert self._campaign(4096) == self._campaign(1)

    def test_chaotic_pooled_campaign_matches_serial_batched(self, tmp_path):
        from repro.harness.chaos import ChaosPolicy
        from repro.harness.parallel import ExecutionPolicy, ResultCache

        serial = self._campaign(4096)
        chaotic = self._campaign(
            4096,
            workers=2,
            cache=ResultCache(tmp_path),
            policy=ExecutionPolicy(
                retries=4,
                backoff_base_s=0.0,
                backoff_cap_s=0.0,
                chaos=ChaosPolicy(seed=5, kill=0.3, corrupt=0.2),
            ),
        )
        assert chaotic == serial
