"""End-to-end chaos tests: the fabric under injected faults.

The acceptance bar from the issue: a quarter-scale Figure-6 sweep with
seeded chaos (worker kills, over-deadline delays, cache corruption)
must finish with a report byte-identical to a fault-free run, and a
sweep SIGKILLed mid-flight must resume with ``--resume`` reproducing
identical bytes while recomputing only the missing cells.

Chaos decisions are a pure function of (seed, channel, job key), so the
fault pattern asserted here — which jobs get killed, delayed, corrupted
— replays exactly on every run and platform.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.harness.chaos import ChaosPolicy
from repro.harness.experiments import experiment_figure6
from repro.harness.parallel import (
    ExecutionPolicy,
    ResultCache,
    SweepJournal,
    execution_policy,
    last_run_stats,
)

WORKLOADS = ["povray", "xz"]
SCALE = 0.25  # 6 cells x ~0.1 s each
# seed=1 over these 6 job keys yields 2 kills, 1 over-deadline delay (on
# a job that is not also killed) and 2 corrupted cache entries — at
# least one event on every chaos channel, deterministically.
CHAOS = ChaosPolicy(seed=1, kill=0.3, delay=0.3, corrupt=0.3)


def _fig6(cache=None):
    return experiment_figure6(
        scale=SCALE, workloads=WORKLOADS, workers=2, cache=cache
    )


class TestChaosEndToEnd:
    def test_report_survives_kills_delays_and_corruption(self, tmp_path):
        clean = _fig6()

        cache = ResultCache(tmp_path)
        policy = ExecutionPolicy(
            timeout_s=2.0, retries=3, backoff_base_s=0.0, chaos=CHAOS
        )
        with execution_policy(policy):
            chaotic = _fig6(cache=cache)
        stats = last_run_stats()
        assert chaotic == clean
        assert stats.crashes >= 1, "chaos must kill at least one worker"
        assert stats.timeouts >= 1, "chaos must push at least one job over deadline"
        assert stats.retries >= stats.crashes + stats.timeouts
        assert not stats.degraded

        # The chaos run corrupted entries *after* caching them; a warm
        # replay must quarantine those, recompute, and stay identical.
        warm_cache = ResultCache(tmp_path)
        warm = _fig6(cache=warm_cache)
        warm_stats = last_run_stats()
        assert warm == clean
        assert warm_stats.quarantined >= 1
        assert warm_stats.cached >= 1 and warm_stats.fresh >= 1
        assert warm_stats.cached + warm_stats.fresh == 6
        quarantined = list(warm_cache.quarantine_dir.glob("*.json"))
        assert len(quarantined) == warm_stats.quarantined

        # Quarantine is evidence, not a retry queue: a third pass is all
        # cache hits.
        final = _fig6(cache=ResultCache(tmp_path))
        assert final == clean and last_run_stats().cached == 6


def _strip_volatile(stdout: str) -> str:
    """Drop the bracketed timing line; everything else is the report."""
    lines = [
        line
        for line in stdout.splitlines()
        if not (line.startswith("[") and line.endswith("]"))
    ]
    return "\n".join(lines)


def _runner(extra, env):
    return [
        sys.executable,
        "-m",
        "repro.harness.runner",
        "fig6",
        "--workloads",
        ",".join(WORKLOADS),
        "--scale",
        "0.5",
        "--workers",
        "2",
        *extra,
    ]


def _entries(cache_dir):
    """Finished cell files (two-hex-char shard dirs; skips journals/)."""
    return list(cache_dir.glob("??/*.json"))


class TestSigkillResume:
    def test_sigkill_midsweep_then_resume_is_byte_identical(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env.pop("REPRO_CHAOS", None)
        cache_dir = tmp_path / "cache"
        reference_dir = tmp_path / "reference"

        victim = subprocess.Popen(
            _runner(["--cache-dir", str(cache_dir)], env),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if _entries(cache_dir):
                    break  # first cell landed on disk — strike now
                if victim.poll() is not None:
                    pytest.fail("sweep finished before it could be killed")
                time.sleep(0.01)
            else:
                pytest.fail("no cache entry appeared within 60s")
            os.kill(victim.pid, signal.SIGKILL)
        finally:
            victim.wait(timeout=30)
        assert victim.returncode == -signal.SIGKILL

        done_before = len(_entries(cache_dir))
        assert 1 <= done_before < 6, "kill landed too late to leave missing cells"
        journals = list((cache_dir / "journals").glob("*.jsonl"))
        assert len(journals) == 1
        assert not any(
            record["event"] == "sweep_complete"
            for record in SweepJournal.load(journals[0])
        )

        resumed = subprocess.run(
            _runner(["--cache-dir", str(cache_dir), "--resume"], env),
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert resumed.returncode == 0, resumed.stderr

        reference = subprocess.run(
            _runner(["--cache-dir", str(reference_dir)], env),
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert reference.returncode == 0, reference.stderr

        assert _strip_volatile(resumed.stdout) == _strip_volatile(reference.stdout)

        # The journal proves the resume recomputed only the missing
        # cells: every pre-kill entry was reused, the rest ran fresh.
        completions = [
            record
            for record in SweepJournal.load(journals[0])
            if record["event"] == "sweep_complete"
        ]
        assert len(completions) == 1
        final = completions[0]
        assert final["cached"] == done_before
        assert final["fresh"] == 6 - done_before


class TestSigtermResume:
    """SIGTERM (CI cancellation, systemd stop) is the polite kill: the
    runner must flush what it has, exit 128+15 with a --resume hint, and
    a resumed run must reproduce the uninterrupted report byte-for-byte."""

    def test_sigterm_midsweep_exits_143_then_resume_is_byte_identical(
        self, tmp_path
    ):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env.pop("REPRO_CHAOS", None)
        cache_dir = tmp_path / "cache"
        reference_dir = tmp_path / "reference"

        victim = subprocess.Popen(
            _runner(["--cache-dir", str(cache_dir)], env),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if _entries(cache_dir):
                    break  # first cell landed on disk — strike now
                if victim.poll() is not None:
                    pytest.fail("sweep finished before it could be killed")
                time.sleep(0.01)
            else:
                pytest.fail("no cache entry appeared within 60s")
            victim.send_signal(signal.SIGTERM)
            _, stderr = victim.communicate(timeout=60)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait(timeout=30)

        # Unlike SIGKILL's -9, SIGTERM is *handled*: a clean exit code in
        # the 128+signal convention plus an actionable one-line hint.
        assert victim.returncode == 143, stderr
        assert "terminated (SIGTERM)" in stderr
        assert "rerun with --resume" in stderr
        assert "Traceback" not in stderr

        done_before = len(_entries(cache_dir))
        assert done_before >= 1  # the journal kept what was finished

        resumed = subprocess.run(
            _runner(["--cache-dir", str(cache_dir), "--resume"], env),
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert resumed.returncode == 0, resumed.stderr

        reference = subprocess.run(
            _runner(["--cache-dir", str(reference_dir)], env),
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert reference.returncode == 0, reference.stderr
        assert _strip_volatile(resumed.stdout) == _strip_volatile(reference.stdout)
