"""Unit tests for the closed-loop adaptive adversary.

Covers the pieces individually — the Blockhammer throttle, the
adversary's fault crafting, per-window activation budgets, the
strategy-switching controller's rules on synthetic telemetry — and then
the assembled siege cell: determinism, the downtime-attribution
identity, and the acceptance separation (a preset policy breaks under an
adaptive strategy while the hardened policy holds the availability
target against every strategy).
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.attacks.adaptive import (
    ACTIVATION_BUDGET,
    ALL_STRATEGIES,
    IMPLICIT_WALKS_PER_WINDOW,
    OP_COSTS,
    STRATEGY_ORDER,
    AdaptiveAttacker,
    Observation,
    craft_bit_offsets,
    make_attacker,
    make_strategy,
)
from repro.attacks.defenses import BlockhammerThrottle
from repro.common.config import PTGuardConfig
from repro.core import pattern
from repro.faults.inject import PTE_BITS, PTES_PER_LINE

SEED = 17
ROW = ("c0", 0, 0, 5)
PROTECTED = pattern.protected_bit_positions(PTGuardConfig().max_phys_bits)


def _obs(window, **overrides):
    """A synthetic Observation; every counter defaults to quiet."""
    values = dict(
        window=window,
        rekeys_fired=0,
        rekeys_suppressed=0,
        incidents=0,
        rows_retired=0,
        spare_rows_free=8,
        corrected=0,
        uncorrectable=0,
        panics=0,
        throttled_ops=0,
        downtime_cycles=0,
    )
    values.update(overrides)
    return Observation(**values)


# -- throttle -----------------------------------------------------------------


class TestBlockhammerThrottle:
    def test_quota_breach_blocks_and_counts(self):
        throttle = BlockhammerThrottle(quota=64)
        assert throttle.request(ROW, 32) is True
        assert throttle.request(ROW, 32) is True
        assert throttle.request(ROW, 32) is False, "third kill breaches quota"
        assert throttle.blocked == 1
        assert throttle.admitted == 2
        assert throttle.pressure(ROW) == 64

    def test_pressure_is_per_row(self):
        throttle = BlockhammerThrottle(quota=8)
        other = ("c0", 0, 0, 6)
        assert throttle.request(ROW, 8) is True
        assert throttle.request(other, 8) is True
        assert throttle.pressure(ROW) == 8
        assert throttle.pressure(other) == 8

    def test_begin_window_decays_pressure_not_counters(self):
        throttle = BlockhammerThrottle(quota=8)
        throttle.request(ROW, 8)
        throttle.request(ROW, 1)
        assert throttle.blocked == 1
        throttle.begin_window()
        assert throttle.pressure(ROW) == 0
        assert throttle.request(ROW, 8) is True
        assert throttle.blocked == 1, "blocked is cumulative across windows"

    def test_rejects_quota_below_one(self):
        with pytest.raises(ValueError, match="quota"):
            BlockhammerThrottle(quota=0)


# -- fault crafting -----------------------------------------------------------


class TestCraftBitOffsets:
    def test_deterministic_per_address(self):
        for kind in ("single", "probe", "kill"):
            first = craft_bit_offsets(SEED, kind, "chan", "3:1", PROTECTED)
            again = craft_bit_offsets(SEED, kind, "chan", "3:1", PROTECTED)
            other = craft_bit_offsets(SEED, kind, "chan", "3:2", PROTECTED)
            assert first == again
            assert first != other or kind == "single"

    @pytest.mark.parametrize(
        "kind,count", [("single", 1), ("probe", 2), ("kill", 8)]
    )
    def test_offsets_distinct_and_in_line(self, kind, count):
        offsets = craft_bit_offsets(SEED, kind, "chan", "0:0", PROTECTED)
        assert len(offsets) == len(set(offsets)) == count
        for offset in offsets:
            assert 0 <= offset < PTES_PER_LINE * PTE_BITS
            assert offset % PTE_BITS in PROTECTED

    def test_kill_concentrates_past_correction(self):
        """Six distinct protected bits in the focus PTE — beyond the
        4-flip detection/correction reach, so the op reliably lands
        detected-uncorrectable at the MAC layer."""
        for key in ("0:0", "1:2", "7:1"):
            offsets = craft_bit_offsets(SEED, "kill", "chan", key, PROTECTED)
            per_pte: dict = {}
            for offset in offsets:
                per_pte.setdefault(offset // PTE_BITS, []).append(offset)
            focus_flips = max(len(bits) for bits in per_pte.values())
            assert focus_flips >= 6
            assert len(per_pte) == 3, "focus plus two neighbour PTEs"

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown hammer op kind"):
            craft_bit_offsets(SEED, "nuke", "chan", "0:0", PROTECTED)


# -- strategies ---------------------------------------------------------------


class TestStrategies:
    @pytest.mark.parametrize("name", STRATEGY_ORDER)
    def test_plans_respect_activation_budget(self, name):
        strategy = make_strategy(name, SEED)
        last = None
        for window in range(6):
            plan = strategy.plan(window, 8, last, None)
            assert plan.explicit_cost <= ACTIVATION_BUDGET
            for op in plan.ops:
                assert op.kind in OP_COSTS
            last = _obs(window)

    @pytest.mark.parametrize("name", STRATEGY_ORDER)
    def test_plans_are_deterministic(self, name):
        plans_a = [
            make_strategy(name, SEED).plan(w, 8, None, None) for w in range(4)
        ]
        plans_b = [
            make_strategy(name, SEED).plan(w, 8, None, None) for w in range(4)
        ]
        assert plans_a == plans_b

    def test_implicit_mode_rides_the_walker(self):
        plan = make_strategy("pthammer_implicit", SEED).plan(0, 8, None, None)
        assert plan.walks == IMPLICIT_WALKS_PER_WINDOW
        assert plan.ops and all(op.implicit and op.hot for op in plan.ops)
        assert plan.explicit_cost == 0, "nothing for the throttle to see"

    def test_retirements_shift_targets(self):
        """Observed retirements move rekey_burst's anchor and the
        implicit cursor — hammering a retired row's original cells is
        wasted pressure once accesses are remapped away."""
        for name in ("rekey_burst", "pthammer_implicit"):
            fresh = make_strategy(name, SEED).plan(3, 8, _obs(2), None)
            shifted = make_strategy(name, SEED).plan(
                3, 8, _obs(2, rows_retired=2), None
            )
            delta = {
                (op.row_index - ref.row_index) % 8
                for op, ref in zip(shifted.ops, fresh.ops)
            }
            assert delta == {2}

    def test_unknown_strategy_is_rejected(self):
        with pytest.raises(ValueError, match="unknown attack strategy"):
            make_strategy("zero_day", SEED)


# -- the switching controller -------------------------------------------------


class TestAdaptiveAttacker:
    def test_pinned_attacker_never_switches(self):
        attacker = make_attacker("low_slow", SEED)
        for window in range(8):
            attacker.plan(window, n_rows=4)
            attacker.observe(_obs(window))
        assert attacker.active.name == "low_slow"
        assert attacker.switches == []

    def test_unknown_strategy_is_rejected(self):
        with pytest.raises(ValueError, match="unknown attack strategy"):
            make_attacker("zero_day", SEED)

    def test_persistent_throttling_goes_implicit(self):
        attacker = make_attacker("escalate", SEED)
        attacker.observe(_obs(0, throttled_ops=1))
        assert attacker.active.name == "low_slow"
        attacker.observe(_obs(1, throttled_ops=2))
        assert attacker.active.name == "pthammer_implicit"
        assert attacker.switches[0].reason == "throttled"
        assert attacker.switches[0].from_strategy == "low_slow"

    def test_drained_spares_abandon_exhaustion(self):
        attacker = AdaptiveAttacker(
            strategies=["spare_exhaustion", "pthammer_implicit"], seed=SEED
        )
        attacker.observe(_obs(0, spare_rows_free=1))
        assert attacker.active.name == "spare_exhaustion"
        attacker.observe(_obs(1, spare_rows_free=0))
        assert attacker.active.name == "pthammer_implicit"
        assert attacker.switches[0].reason == "spares_drained"

    def test_absorbed_escalates_then_locks_onto_most_damaging(self):
        attacker = AdaptiveAttacker(
            strategies=["low_slow", "rekey_burst"], seed=SEED
        )
        # low_slow does real (sub-threshold) damage: 19k cycles/window.
        for window in range(3):
            attacker.observe(
                _obs(window, downtime_cycles=19_000 * (window + 1))
            )
        assert attacker.active.name == "rekey_burst"
        assert attacker.switches[0].reason == "absorbed"
        # rekey_burst gets absorbed for free — the controller locks back
        # onto the strategy with the highest mean damage per window.
        for window in range(3, 6):
            attacker.observe(_obs(window, downtime_cycles=57_000))
        assert attacker.active.name == "low_slow"
        assert attacker.switches[1].reason == "locked"
        # Locked means locked: further absorption changes nothing.
        for window in range(6, 9):
            attacker.observe(_obs(window, downtime_cycles=57_000))
        assert len(attacker.switches) == 2

    def test_panics_suppress_absorption(self):
        attacker = AdaptiveAttacker(
            strategies=["low_slow", "rekey_burst"], seed=SEED
        )
        for window in range(6):
            attacker.observe(_obs(window, panics=window + 1))
        assert attacker.active.name == "low_slow", "a panicking strategy stays"
        assert attacker.switches == []


# -- the assembled cell -------------------------------------------------------


class TestAdaptiveSiegeCell:
    def _cell(self, strategy, policy, windows=12):
        from repro.analysis.siege_eval import run_adaptive_siege_cell

        return run_adaptive_siege_cell(
            strategy, windows, SEED, recovery=policy.as_params()
        )

    def test_cell_is_deterministic(self):
        from repro.recovery.policy import RECOVERY_POLICIES

        policy = RECOVERY_POLICIES["full"]
        first = self._cell("escalate", policy, windows=6)
        again = self._cell("escalate", policy, windows=6)
        assert asdict(first) == asdict(again)
        assert first.observations, "telemetry trace must be recorded"
        assert [o["window"] for o in first.observations] == list(range(6))

    def test_downtime_attribution_identity(self):
        from repro.recovery.policy import RECOVERY_POLICIES

        cell = self._cell("rekey_burst", RECOVERY_POLICIES["full"], windows=6)
        assert sum(cell.downtime_attribution.values()) == cell.downtime_cycles
        assert 0.0 <= cell.availability <= 1.0
        assert cell.downtime_cycles <= cell.exposure_cycles

    def test_preset_breaks_under_adaptive_pressure(self):
        from repro.recovery.policy import RECOVERY_POLICIES

        cell = self._cell("rekey_burst", RECOVERY_POLICIES["full"])
        assert cell.availability < 0.99, (
            "the full preset must lose its availability target to the "
            "rekey-timing strategy (its own sweeps are the damage)"
        )

    @pytest.mark.parametrize("strategy", sorted(ALL_STRATEGIES))
    def test_hardened_policy_holds_target(self, strategy):
        from repro.recovery import hardened_policy

        cell = self._cell(strategy, hardened_policy())
        assert cell.availability >= 0.99
        assert cell.panics == 0
