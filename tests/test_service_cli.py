"""Runner ``--serve`` mode: exit codes and messages, via subprocess.

Exit-code contract (sysexits-flavoured): 0 success, 1 experiment
failure, 2 usage error, 75 = EX_TEMPFAIL for transient service-side
refusals — admission control (rate limit, full queue) and an open
circuit with degraded fallback disabled. 75 tells retry loops "the same
command later should succeed", which neither 1 nor 2 does; the stderr
line carries the typed reason and a retry hint.
"""

from __future__ import annotations

import os
import subprocess
import sys

SCALE_ARGS = ["--scale", "0.25", "--workloads", "povray,xz"]


def _run(tmp_path, extra, experiment="fig6"):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env.pop("REPRO_CHAOS", None)
    env.pop("REPRO_BACKEND", None)
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.harness.runner",
            experiment,
            *SCALE_ARGS,
            "--cache-dir",
            str(tmp_path / "cache"),
            *extra,
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestServeHappyPath:
    def test_serve_runs_experiment_and_reports_tenant(self, tmp_path):
        result = _run(tmp_path, ["--serve", "--tenant", "alice"])
        assert result.returncode == 0, result.stderr
        assert "slowdown by workload" in result.stdout
        assert "tenant=alice" in result.stderr
        assert "[service health: ok" in result.stderr
        # The tenant's private cache subtree was populated.
        tenant_dir = tmp_path / "cache" / "tenants" / "alice"
        assert list(tenant_dir.glob("??/*.json"))

    def test_serve_report_matches_direct_mode(self, tmp_path):
        served = _run(tmp_path, ["--serve"])
        direct = _run(tmp_path, [])
        assert served.returncode == 0 and direct.returncode == 0

        def _report(stdout):
            return "\n".join(
                line
                for line in stdout.splitlines()
                if not (line.startswith("[") and line.endswith("]"))
            )

        assert _report(served.stdout) == _report(direct.stdout)


class TestTempfail:
    def test_rate_limited_exits_75_with_retry_hint(self, tmp_path):
        result = _run(tmp_path, ["--serve", "--rate", "0:0"])
        assert result.returncode == 75
        assert "temporarily unavailable (rate_limited)" in result.stderr
        assert "EX_TEMPFAIL" in result.stderr
        assert "retry" in result.stderr

    def test_circuit_open_fail_fast_exits_75(self, tmp_path):
        result = _run(
            tmp_path,
            [
                "--serve",
                "--no-degraded",
                "--breaker-threshold",
                "1",
                "--chaos",
                "seed=7,kill=1.0",
                "--retries",
                "0",
            ],
        )
        assert result.returncode == 75
        assert "temporarily unavailable (circuit_open)" in result.stderr
        assert "retry in" in result.stderr

    def test_degraded_fallback_beats_tempfail_by_default(self, tmp_path):
        # Same chaos, but degraded fallback on (the default): the service
        # reroutes to in-process execution and still succeeds.
        result = _run(
            tmp_path,
            ["--serve", "--chaos", "seed=7,kill=1.0", "--retries", "0"],
        )
        assert result.returncode == 0, result.stderr
        assert "degraded=True" in result.stderr


class TestUsageErrors:
    def test_serve_with_no_cache_is_usage_error(self, tmp_path):
        result = _run(tmp_path, ["--serve", "--no-cache"])
        assert result.returncode == 2
        assert "per-tenant caches" in result.stderr

    def test_rate_without_serve_is_usage_error(self, tmp_path):
        result = _run(tmp_path, ["--rate", "4:1"])
        assert result.returncode == 2

    def test_bad_rate_spec_is_usage_error(self, tmp_path):
        result = _run(tmp_path, ["--serve", "--rate", "fast"])
        assert result.returncode == 2
        assert "CAP:REFILL" in result.stderr

    def test_unknown_backend_is_usage_error(self, tmp_path):
        result = _run(tmp_path, ["--backend", "quantum"])
        assert result.returncode == 2
        assert "unknown backend" in result.stderr


class TestBackendFlagDirectMode:
    def test_explicit_backend_produces_same_report(self, tmp_path):
        threaded = _run(tmp_path, ["--backend", "threaded", "--workers", "2"])
        default = _run(tmp_path, ["--workers", "2"])
        assert threaded.returncode == 0, threaded.stderr
        assert default.returncode == 0, default.stderr

        def _report(stdout):
            return "\n".join(
                line
                for line in stdout.splitlines()
                if not (line.startswith("[") and line.endswith("]"))
            )

        assert _report(threaded.stdout) == _report(default.stdout)
