"""Runner ``--serve`` mode: exit codes and messages, via subprocess.

Exit-code contract (sysexits-flavoured): 0 success, 1 experiment
failure, 2 usage error, 75 = EX_TEMPFAIL for transient service-side
refusals — admission control (rate limit, full queue) and an open
circuit with degraded fallback disabled. 75 tells retry loops "the same
command later should succeed", which neither 1 nor 2 does; the stderr
line carries the typed reason and a retry hint.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

SCALE_ARGS = ["--scale", "0.25", "--workloads", "povray,xz"]


def _run(tmp_path, extra, experiment="fig6"):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env.pop("REPRO_CHAOS", None)
    env.pop("REPRO_BACKEND", None)
    env.pop("REPRO_SUPERVISED", None)
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.harness.runner",
            experiment,
            *SCALE_ARGS,
            "--cache-dir",
            str(tmp_path / "cache"),
            *extra,
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestServeHappyPath:
    def test_serve_runs_experiment_and_reports_tenant(self, tmp_path):
        result = _run(tmp_path, ["--serve", "--tenant", "alice"])
        assert result.returncode == 0, result.stderr
        assert "slowdown by workload" in result.stdout
        assert "tenant=alice" in result.stderr
        assert "[service health: ok" in result.stderr
        # The tenant's private cache subtree was populated.
        tenant_dir = tmp_path / "cache" / "tenants" / "alice"
        assert list(tenant_dir.glob("??/*.json"))

    def test_serve_report_matches_direct_mode(self, tmp_path):
        served = _run(tmp_path, ["--serve"])
        direct = _run(tmp_path, [])
        assert served.returncode == 0 and direct.returncode == 0

        def _report(stdout):
            return "\n".join(
                line
                for line in stdout.splitlines()
                if not (line.startswith("[") and line.endswith("]"))
            )

        assert _report(served.stdout) == _report(direct.stdout)


class TestTempfail:
    def test_rate_limited_exits_75_with_retry_hint(self, tmp_path):
        result = _run(tmp_path, ["--serve", "--rate", "0:0"])
        assert result.returncode == 75
        assert "temporarily unavailable (rate_limited)" in result.stderr
        assert "EX_TEMPFAIL" in result.stderr
        assert "retry" in result.stderr

    def test_circuit_open_fail_fast_exits_75(self, tmp_path):
        result = _run(
            tmp_path,
            [
                "--serve",
                "--no-degraded",
                "--breaker-threshold",
                "1",
                "--chaos",
                "seed=7,kill=1.0",
                "--retries",
                "0",
            ],
        )
        assert result.returncode == 75
        assert "temporarily unavailable (circuit_open)" in result.stderr
        assert "retry in" in result.stderr

    def test_degraded_fallback_beats_tempfail_by_default(self, tmp_path):
        # Same chaos, but degraded fallback on (the default): the service
        # reroutes to in-process execution and still succeeds.
        result = _run(
            tmp_path,
            ["--serve", "--chaos", "seed=7,kill=1.0", "--retries", "0"],
        )
        assert result.returncode == 0, result.stderr
        assert "degraded=True" in result.stderr


def _report(stdout):
    """Strip bracketed status lines; what's left is the report proper."""
    return "\n".join(
        line
        for line in stdout.splitlines()
        if not (line.startswith("[") and line.endswith("]"))
    )


def _duplicate_journal_keys(cache_root):
    """job_done keys logged more than once across all sweep journals."""
    duplicates = []
    for journal in cache_root.rglob("journals/*.jsonl"):
        seen = set()
        for line in journal.read_text().splitlines():
            entry = json.loads(line)
            if entry.get("event") != "job_done":
                continue
            if entry["key"] in seen:
                duplicates.append((journal.name, entry["key"]))
            seen.add(entry["key"])
    return duplicates


class TestDurableServe:
    """--state-dir crash recovery, end to end through real processes."""

    def test_sigkill_then_restart_resumes_byte_identical(self, tmp_path):
        durable = [
            "--serve",
            "--state-dir",
            str(tmp_path / "state"),
        ]
        # The crash channel SIGKILLs the serving process mid-sweep, at a
        # seed-addressed cell: a real signal death, not an exception.
        crashed = _run(
            tmp_path, [*durable, "--service-chaos", "seed=7,crash=1.0"]
        )
        assert crashed.returncode == -9, crashed.stderr
        assert (tmp_path / "state" / "service.wal").exists()

        # Restart against the same state dir, chaos off: the WAL replay
        # re-adopts the interrupted sweep and the run completes.
        restarted = _run(tmp_path, durable)
        assert restarted.returncode == 0, restarted.stderr
        assert "'recovered': 1" in restarted.stderr
        assert "durability=durable" in restarted.stderr

        # Byte-identical to a quiet uninterrupted run...
        direct = _run(tmp_path / "fresh", ["--serve"])
        assert direct.returncode == 0, direct.stderr
        assert _report(restarted.stdout) == _report(direct.stdout)
        # ...and exactly-once at the journal level: no cell was ever
        # recorded done twice, crash and recovery included.
        assert _duplicate_journal_keys(tmp_path / "cache") == []

    def test_supervised_serve_converges_under_persistent_crashes(
        self, tmp_path
    ):
        # Chaos stays on across restarts; every attempt still banks its
        # completed cells in the content-addressed cache, so the missing
        # set shrinks below the crash point and the run converges.
        result = _run(
            tmp_path,
            [
                "--serve",
                "--state-dir",
                str(tmp_path / "state"),
                "--service-chaos",
                "seed=7,crash=1.0",
                "--supervise",
                "--max-restarts",
                "8",
            ],
        )
        assert result.returncode == 0, result.stderr
        assert "[supervisor: watching" in result.stderr
        assert "restart(s), exit 0]" in result.stderr
        assert "slowdown by workload" in result.stdout


class TestUsageErrors:
    def test_serve_with_no_cache_is_usage_error(self, tmp_path):
        result = _run(tmp_path, ["--serve", "--no-cache"])
        assert result.returncode == 2
        assert "per-tenant caches" in result.stderr

    def test_rate_without_serve_is_usage_error(self, tmp_path):
        result = _run(tmp_path, ["--rate", "4:1"])
        assert result.returncode == 2

    def test_bad_rate_spec_is_usage_error(self, tmp_path):
        result = _run(tmp_path, ["--serve", "--rate", "fast"])
        assert result.returncode == 2
        assert "CAP:REFILL" in result.stderr

    def test_unknown_backend_is_usage_error(self, tmp_path):
        result = _run(tmp_path, ["--backend", "quantum"])
        assert result.returncode == 2
        assert "unknown backend" in result.stderr

    def test_state_dir_without_serve_is_usage_error(self, tmp_path):
        result = _run(tmp_path, ["--state-dir", str(tmp_path / "state")])
        assert result.returncode == 2

    def test_supervise_without_state_dir_is_usage_error(self, tmp_path):
        result = _run(tmp_path, ["--serve", "--supervise"])
        assert result.returncode == 2
        assert "--state-dir" in result.stderr

    def test_bad_service_chaos_spec_is_usage_error(self, tmp_path):
        result = _run(
            tmp_path, ["--serve", "--service-chaos", "seed=7,crash=2.0"]
        )
        assert result.returncode == 2


class TestBackendFlagDirectMode:
    def test_explicit_backend_produces_same_report(self, tmp_path):
        threaded = _run(tmp_path, ["--backend", "threaded", "--workers", "2"])
        default = _run(tmp_path, ["--workers", "2"])
        assert threaded.returncode == 0, threaded.stderr
        assert default.returncode == 0, default.stderr

        def _report(stdout):
            return "\n".join(
                line
                for line in stdout.splitlines()
                if not (line.startswith("[") and line.endswith("]"))
            )

        assert _report(threaded.stdout) == _report(default.stdout)
