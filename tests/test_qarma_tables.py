"""Equivalence guards for the hot-path optimisations.

Two refactors trade implementation for speed while claiming bit-exact
behaviour; these tests pin the claim down:

* the table-driven QARMA path must agree with the cell-by-cell reference
  path on every block, for both widths and both directions;
* the MAC verify cache must be outcome-invisible: every guard result is
  identical with the cache on or off, across write invalidations and key
  rotations.
"""

from __future__ import annotations

import random

import pytest

from repro.common.config import PTGuardConfig
from repro.core.guard import PTGuard
from repro.core.pattern import join_ptes
from repro.crypto.qarma import Qarma, Qarma64, Qarma128
from repro.mmu.pte import make_x86_pte

TRIALS = 48


@pytest.mark.parametrize(
    "factory,block_bits,key_bytes",
    [
        pytest.param(Qarma64, 64, 16, id="qarma64"),
        pytest.param(Qarma128, 128, 32, id="qarma128"),
    ],
)
def test_table_path_matches_reference(factory, block_bits, key_bytes):
    """Random keys/tweaks/blocks: tables == reference, both directions."""
    rng = random.Random(0xC0FFEE ^ block_bits)
    for _ in range(TRIALS):
        cipher = factory(rng.randbytes(key_bytes))
        block = rng.getrandbits(block_bits)
        tweak = rng.getrandbits(block_bits)
        ct = cipher.encrypt(block, tweak)
        assert ct == cipher.encrypt_reference(block, tweak)
        assert cipher.decrypt(ct, tweak) == block
        assert cipher.decrypt_reference(ct, tweak) == block


def test_table_path_matches_reference_edge_blocks():
    """All-zero / all-one blocks and tweaks agree on both paths."""
    for factory, block_bits, key_bytes in (
        (Qarma64, 64, 16),
        (Qarma128, 128, 32),
    ):
        cipher = factory(bytes(range(key_bytes)))
        full = (1 << block_bits) - 1
        for block in (0, 1, full):
            for tweak in (0, full):
                assert cipher.encrypt(block, tweak) == cipher.encrypt_reference(
                    block, tweak
                )


def test_use_tables_flag_selects_reference_path():
    """``use_tables=False`` instances run the reference path end to end."""
    key = bytes(range(32))
    fast, slow = Qarma128(key), Qarma128(key, use_tables=False)
    for block in (0, 0x0123_4567_89AB_CDEF, (1 << 128) - 1):
        assert fast.encrypt(block, 7) == slow.encrypt(block, 7)
        assert fast.decrypt(block, 7) == slow.decrypt(block, 7)


def test_reduced_round_variants_agree():
    """The equivalence holds for every round count, not just the defaults."""
    rng = random.Random(99)
    for rounds in (1, 2, 5):
        cipher = Qarma(rng.randbytes(32), cell_bits=8, rounds=rounds)
        block, tweak = rng.getrandbits(128), rng.getrandbits(128)
        assert cipher.encrypt(block, tweak) == cipher.encrypt_reference(block, tweak)


# -- MAC verify cache equivalence ---------------------------------------------


def _pte_line(base_pfn: int) -> bytes:
    return join_ptes([make_x86_pte(base_pfn + i) for i in range(8)])


def _guard_pair(mac_algorithm: str = "blake2") -> tuple[PTGuard, PTGuard]:
    cached = PTGuard(
        PTGuardConfig(mac_verify_cache_entries=64), mac_algorithm=mac_algorithm
    )
    uncached = PTGuard(
        PTGuardConfig(mac_verify_cache_entries=0), mac_algorithm=mac_algorithm
    )
    return cached, uncached


def test_verify_cache_identical_outcomes_read_write():
    """Same write/read/overwrite sequence, cache on vs off: same outcomes."""
    cached, uncached = _guard_pair()
    rng = random.Random(5)
    lines = {addr: _pte_line(0x1000 + 8 * i) for i, addr in
             enumerate(range(0x40000, 0x40000 + 64 * 16, 64))}
    stored: dict[int, bytes] = {}
    for step in range(400):
        address = rng.choice(list(lines))
        if rng.random() < 0.3:  # overwrite: must invalidate the memo
            line = _pte_line(0x9000 + step * 8)
            out_c = cached.process_write(address, line)
            out_u = uncached.process_write(address, line)
            assert out_c == out_u
            stored[address] = out_c.stored_line
        elif address in stored:
            out_c = cached.process_read(address, stored[address], True)
            out_u = uncached.process_read(address, stored[address], True)
            assert out_c == out_u
            assert out_c.mac_matched
        else:
            line = lines[address]
            out_c = cached.process_write(address, line)
            out_u = uncached.process_write(address, line)
            assert out_c == out_u
            stored[address] = out_c.stored_line
    # The cache actually engaged (otherwise this test proves nothing).
    assert cached.engine.stats.get("verify_cache_hits") > 0
    assert uncached.engine.stats.get("verify_cache_hits") == 0


def test_verify_cache_invalidated_on_write():
    """A rewrite of the same address never serves the stale memoized tag."""
    cached, uncached = _guard_pair()
    address = 0x8000
    first_c = cached.process_write(address, _pte_line(0x100)).stored_line
    first_u = uncached.process_write(address, _pte_line(0x100)).stored_line
    assert cached.process_read(address, first_c, True).mac_matched
    assert cached.process_read(address, first_c, True).mac_matched  # memo hit
    assert cached.engine.stats.get("verify_cache_hits") > 0
    second_c = cached.process_write(address, _pte_line(0x200)).stored_line
    second_u = uncached.process_write(address, _pte_line(0x200)).stored_line
    assert second_c == second_u != first_c
    assert cached.engine.stats.get("verify_cache_invalidations") > 0
    # New contents verify correctly; a tampered new line fails identically
    # with the memo populated (it must miss on the changed bytes) or absent.
    assert cached.process_read(address, second_c, True).mac_matched
    tampered = bytes([second_c[0] ^ 0x10]) + second_c[1:]
    out_c = cached.process_read(address, tampered, True)
    out_u = uncached.process_read(address, tampered, True)
    assert out_c == out_u
    assert not out_c.mac_matched
    # The pre-rewrite stored line is self-consistent (its own MAC still
    # embeds), so both guards agree it verifies — what matters is equality.
    assert cached.process_read(address, first_c, True) == uncached.process_read(
        address, first_u, True
    )


def test_verify_cache_cleared_on_rekey():
    """After rekey() no pre-rotation tag can ever be served again."""
    cached, uncached = _guard_pair()
    address = 0x8000
    line = _pte_line(0x300)
    old_c = cached.process_write(address, line).stored_line
    old_u = uncached.process_write(address, line).stored_line
    assert cached.process_read(address, old_c, True).mac_matched
    cached.rekey()
    uncached.rekey()
    # Old stored line fails identically under the new key, cache on or off.
    out_c = cached.process_read(address, old_c, True)
    out_u = uncached.process_read(address, old_u, True)
    assert out_c == out_u
    assert not out_c.mac_matched
    new_c = cached.process_write(address, line).stored_line
    new_u = uncached.process_write(address, line).stored_line
    assert new_c == new_u
    assert cached.process_read(address, new_c, True).mac_matched


def test_verify_cache_simulated_computations_identical():
    """``computations`` (energy accounting) ignores the host-side memo."""
    cached, uncached = _guard_pair()
    address, line = 0x8000, _pte_line(0x400)
    stored_c = cached.process_write(address, line).stored_line
    stored_u = uncached.process_write(address, line).stored_line
    for _ in range(10):
        cached.process_read(address, stored_c, True)
        uncached.process_read(address, stored_u, True)
    assert cached.engine.computations == uncached.engine.computations
