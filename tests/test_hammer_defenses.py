"""Tests for hammer patterns and the prior-defense implementations."""

import pytest

from repro.attacks.defenses import (
    PARA,
    TRR,
    CompositeMitigation,
    CounterTRR,
    MonotonicPlacement,
    SecWalkChecker,
    SoftTRR,
)
from repro.attacks.hammer import HammerAttack
from repro.dram.rowhammer import RowhammerModel, RowhammerProfile
from repro.harness.system import build_system

PROFILE = RowhammerProfile("test", threshold=100, flip_probability=0.05)
VICTIM = 1000


def make_attack(mitigation=None):
    system = build_system(rowhammer=PROFILE, seed=4)
    system.dram.mitigation = mitigation
    for address in system.dram.addresses_in_row((0, 0, 0, VICTIM)):
        system.memory.write_line(address, b"\x5a" * 64)
    return system, HammerAttack(system.dram)


class TestPatterns:
    def test_double_sided_flips_at_threshold(self):
        system, attack = make_attack()
        report = attack.double_sided(VICTIM, iterations=80)
        assert report.activations == 160
        assert any(f.row_key == (0, 0, 0, VICTIM) for f in report.flips)

    def test_below_threshold_no_flips(self):
        system, attack = make_attack()
        report = attack.double_sided(VICTIM, iterations=40)  # 80 < 100
        assert report.flips == []

    def test_single_sided_needs_double_activations(self):
        system, attack = make_attack()
        report = attack.single_sided(VICTIM, iterations=99)
        assert not any(f.row_key == (0, 0, 0, VICTIM) for f in report.flips)
        report = attack.single_sided(VICTIM, iterations=30)
        system2, attack2 = make_attack()
        report2 = attack2.single_sided(VICTIM, iterations=110)
        assert any(f.row_key == (0, 0, 0, VICTIM) for f in report2.flips)

    def test_many_sided_activation_count(self):
        system, attack = make_attack()
        report = attack.many_sided(VICTIM, iterations=10, aggressors=9)
        assert report.activations == 90

    def test_half_double_alone_harmless(self):
        system, attack = make_attack()
        report = attack.half_double(VICTIM, iterations=500)
        assert not any(f.row_key == (0, 0, 0, VICTIM) for f in report.flips)

    def test_flip_directions_respect_content(self):
        system, attack = make_attack()
        report = attack.double_sided(VICTIM, iterations=200)
        victim_flips = [f for f in report.flips if f.row_key == (0, 0, 0, VICTIM)]
        directions = {f.direction for f in victim_flips}
        assert directions == {"1->0", "0->1"}  # 0x5a has both polarities


class TestPARA:
    def test_protects_double_sided(self):
        system, attack = make_attack(PARA(0.05, 524288 // 8192 * 16 * 0 + 32768))
        report = attack.double_sided(VICTIM, iterations=400)
        assert not any(f.row_key == (0, 0, 0, VICTIM) for f in report.flips)

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            PARA(1.5, 100)


class TestTRR:
    def test_protects_double_sided(self):
        system, attack = make_attack(
            TRR(rows_per_bank=32768, sampler_size=4, mitigation_interval=25)
        )
        report = attack.double_sided(VICTIM, iterations=400)
        assert not any(f.row_key == (0, 0, 0, VICTIM) for f in report.flips)

    def test_many_sided_overflows_sampler(self):
        system, attack = make_attack(
            TRR(rows_per_bank=32768, sampler_size=4, mitigation_interval=25)
        )
        report = attack.many_sided(VICTIM, iterations=150, aggressors=9)
        assert report.flips  # some enclosed victim flipped

    def test_half_double_weaponises_refreshes(self):
        system, attack = make_attack(
            TRR(rows_per_bank=32768, sampler_size=4, mitigation_interval=25)
        )
        report = attack.half_double(VICTIM, iterations=1500)
        assert any(f.row_key == (0, 0, 0, VICTIM) for f in report.flips)


class TestCounterTRR:
    def test_precise_counting_blocks_many_sided(self):
        system, attack = make_attack(
            CounterTRR(rows_per_bank=32768, design_threshold=12)
        )
        report = attack.many_sided(VICTIM, iterations=150, aggressors=9)
        assert not report.flips

    def test_low_threshold_module_breaks_it(self):
        """Design threshold assumed RTH 400, module flips at 100."""
        system, attack = make_attack(
            CounterTRR(rows_per_bank=32768, design_threshold=200)
        )
        report = attack.double_sided(VICTIM, iterations=300)
        assert any(f.row_key == (0, 0, 0, VICTIM) for f in report.flips)


class TestSoftTRR:
    def test_protects_registered_pte_row_distance_one(self):
        defense = SoftTRR(rows_per_bank=32768, design_threshold=12)
        defense.register_pte_row((0, 0, 0, VICTIM))
        system, attack = make_attack(defense)
        report = attack.double_sided(VICTIM, iterations=400)
        assert not any(f.row_key == (0, 0, 0, VICTIM) for f in report.flips)

    def test_unregistered_rows_not_protected(self):
        defense = SoftTRR(rows_per_bank=32768, design_threshold=12)
        system, attack = make_attack(defense)
        report = attack.double_sided(VICTIM, iterations=400)
        assert any(f.row_key == (0, 0, 0, VICTIM) for f in report.flips)


class TestComposite:
    def test_layers_union(self):
        soft = SoftTRR(rows_per_bank=32768, design_threshold=12)
        trr = TRR(rows_per_bank=32768, sampler_size=4, mitigation_interval=25)
        composite = CompositeMitigation(soft, trr)
        assert composite.name == "SoftTRR+TRR"
        soft.register_pte_row((0, 0, 0, VICTIM))
        system, attack = make_attack(composite)
        report = attack.double_sided(VICTIM, iterations=400)
        assert not any(f.row_key == (0, 0, 0, VICTIM) for f in report.flips)
        assert composite.refreshes_issued > 0


class TestSecWalk:
    def test_detects_up_to_four(self):
        checker = SecWalkChecker()
        assert checker.check(0b1111, 0b0111).detected
        assert checker.check(0b1111, 0b0000).detected

    def test_misses_five(self):
        checker = SecWalkChecker()
        assert not checker.check(0b11111, 0b00000).detected

    def test_clean_is_not_detection(self):
        assert not SecWalkChecker().check(42, 42).detected


class TestHalfDoubleFactorRegression:
    """Regression guard for `RowhammerProfile.half_double_factor` units
    (a disturbance divisor): distance-2-only hammering must be unable to
    flip without mitigation refreshes."""

    @staticmethod
    def _model(profile):
        def neighbors(row_key, distance):
            bank = row_key[:3]
            row = row_key[3]
            return [bank + (row - distance,), bank + (row + distance,)]

        return RowhammerModel(profile, lines_per_row=1, neighbor_fn=neighbors)

    def test_activation_budget_cannot_cross_real_thresholds_at_distance_2(self):
        """Analytic bound: a whole refresh window of activations, divided
        by the coupling factor, stays below every real profile's RTH."""
        for profile in (
            RowhammerProfile.ddr3_2014(),
            RowhammerProfile.ddr4_2020(),
            RowhammerProfile.lpddr4_2020(),
        ):
            budget = profile.activation_budget()
            absorbed = 2 * budget / profile.half_double_factor  # both d-2 rows
            assert absorbed < profile.threshold, profile.name

    def test_distance_2_only_deposits_coupling_fraction(self):
        model = self._model(RowhammerProfile.scaled(threshold=600))
        victim = (0, 0, 0, 100)
        for _ in range(50_000):
            model.record_activation((0, 0, 0, 98))
            model.record_activation((0, 0, 0, 102))
        # victim absorbed 2 * 50k / 2000 = 50 units: far below RTH 600
        assert model.disturbance(victim) == pytest.approx(50.0)
        assert not model.over_threshold(victim)
        # while the aggressors' *adjacent* rows are deep over threshold
        # (ordinary distance-1 physics, not Half-Double)
        assert model.over_threshold((0, 0, 0, 97))
        assert model.over_threshold((0, 0, 0, 103))

    def test_mitigation_refreshes_drive_the_distance_2_victim_over(self):
        """The Half-Double mechanism: victim refreshes of the distance-1
        rows re-activate their wordlines, hammering distance 2 at full
        (1.0-unit) strength."""
        model = self._model(RowhammerProfile.scaled(threshold=600))
        victim = (0, 0, 0, 100)
        for _ in range(600):
            model.record_mitigation_refresh((0, 0, 0, 99))
        assert model.over_threshold(victim)
        assert model.dominant_distance(victim) == 1  # full-strength deposits

    def test_half_double_attack_flips_nothing_without_a_defense(self):
        """End-to-end restatement over the device: no mitigation, no
        victim refreshes, no distance-2 flips (examples/rowhammer_lab.py
        step 4)."""
        system, attack = make_attack(mitigation=None)
        report = attack.half_double(VICTIM, iterations=1500)
        assert not any(f.row_key == (0, 0, 0, VICTIM) for f in report.flips)
        assert system.dram.stats.get("mitigation_refreshes") == 0


class TestMonotonic:
    def test_blocks_downward_pfn(self):
        placement = MonotonicPlacement(watermark_pfn=0x1000)
        original = 0x2000 << 12 | 1
        tampered = 0x0000 << 12 | 1
        assert placement.exploit_prevented(original, tampered, 0).detected

    def test_misses_metadata(self):
        placement = MonotonicPlacement(watermark_pfn=0x1000)
        original = 0x2000 << 12 | 1
        tampered = original | 0b100  # user bit
        assert not placement.exploit_prevented(original, tampered, 0x2000).detected

    def test_misses_upward_anti_cell_flip(self):
        placement = MonotonicPlacement(watermark_pfn=0x1000)
        original = 0x0800 << 12 | 1
        tampered = 0x1800 << 12 | 1
        assert not placement.exploit_prevented(original, tampered, 0x1800).detected

    def test_placement_check(self):
        placement = MonotonicPlacement(watermark_pfn=0x1000)
        assert placement.placement_ok(0x1800)
        assert not placement.placement_ok(0x800)
