"""The --supervise watchdog: restart policy, backoff, crash loops.

All tests drive :class:`Supervisor` with fake spawn/sleep/clock
callables — no subprocesses, no real time. The end-to-end supervised
``--serve`` path (real SIGKILLs, real restarts) lives in
``tests/test_service_cli.py``.
"""

from __future__ import annotations

import pytest

from repro.service.supervisor import (
    EX_TEMPFAIL,
    Supervisor,
    SupervisorConfig,
    is_crash,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _run(exit_codes, config=None, clock=None, advance_per_spawn=0.0):
    """Drive a supervisor over a scripted child-exit sequence.

    Returns (final exit code, sleeps observed, spawn count).
    """
    clock = clock or FakeClock()
    sleeps = []
    sequence = iter(exit_codes)
    spawns = []

    def spawn():
        clock.now += advance_per_spawn
        code = next(sequence)
        spawns.append(code)
        return code

    supervisor = Supervisor(
        spawn,
        config or SupervisorConfig(),
        sleep_fn=sleeps.append,
        time_fn=clock,
    )
    return supervisor.run(), sleeps, len(spawns)


class TestCrashClassification:
    @pytest.mark.parametrize("code", [-9, -11, -6, 134, 137, 139])
    def test_signal_deaths_are_crashes(self, code):
        assert is_crash(code)

    @pytest.mark.parametrize("code", [0, 1, 2, 75, 130, 143])
    def test_chosen_exits_are_not_crashes(self, code):
        assert not is_crash(code)


class TestSupervisor:
    def test_clean_exit_propagates_without_restart(self):
        code, sleeps, spawns = _run([0])
        assert code == 0 and spawns == 1 and sleeps == []

    @pytest.mark.parametrize("clean", [1, 2, 75, 130, 143])
    def test_nonzero_chosen_exits_propagate_immediately(self, clean):
        code, _, spawns = _run([clean])
        assert code == clean and spawns == 1

    def test_crash_then_clean_restarts_once(self):
        code, sleeps, spawns = _run([-9, 0])
        assert code == 0 and spawns == 2
        assert sleeps == [0.5]

    def test_backoff_is_bounded_exponential(self):
        config = SupervisorConfig(
            max_restarts=10, backoff_base_s=0.5, backoff_cap_s=4.0
        )
        code, sleeps, spawns = _run([-9, -9, -9, -9, -9, 0], config=config)
        assert code == 0 and spawns == 6
        # 0.5, 1, 2, 4, then capped at 4.
        assert sleeps == [0.5, 1.0, 2.0, 4.0, 4.0]

    def test_crash_loop_exits_tempfail(self):
        config = SupervisorConfig(max_restarts=3)
        code, _, spawns = _run([-9] * 10, config=config)
        # budget of 3 restarts -> 4th crash gives up; the child ran
        # 1 original + 3 restarts = 4 times.
        assert code == EX_TEMPFAIL and spawns == 4

    def test_shell_style_137_counts_as_crash(self):
        code, _, spawns = _run([137, 0])
        assert code == 0 and spawns == 2

    def test_old_crashes_age_out_of_the_window(self):
        # One crash every 150s against a 300s window and budget 3:
        # never more than 3 crashes in any (inclusive) window, so the
        # service keeps being restarted as long as the pattern holds.
        config = SupervisorConfig(max_restarts=3, crash_window_s=300.0)
        code, _, spawns = _run(
            [-9] * 8 + [0], config=config, advance_per_spawn=150.0
        )
        assert code == 0 and spawns == 9

    def test_dense_crashes_inside_window_exhaust_budget(self):
        config = SupervisorConfig(max_restarts=3, crash_window_s=300.0)
        code, _, spawns = _run(
            [-9] * 8 + [0], config=config, advance_per_spawn=1.0
        )
        assert code == EX_TEMPFAIL and spawns == 4

    def test_zero_budget_gives_up_on_first_crash(self):
        config = SupervisorConfig(max_restarts=0)
        code, _, spawns = _run([-9, 0], config=config)
        assert code == EX_TEMPFAIL and spawns == 1

    def test_restart_counter_is_exposed(self):
        clock = FakeClock()
        sequence = iter([-9, -9, 0])

        def spawn():
            return next(sequence)

        supervisor = Supervisor(
            spawn, SupervisorConfig(), sleep_fn=lambda _s: None, time_fn=clock
        )
        assert supervisor.run() == 0
        assert supervisor.restarts == 2


class TestConfig:
    def test_backoff_schedule(self):
        config = SupervisorConfig(backoff_base_s=1.0, backoff_cap_s=10.0)
        assert [config.backoff_s(n) for n in range(6)] == [
            1.0, 2.0, 4.0, 8.0, 10.0, 10.0,
        ]
