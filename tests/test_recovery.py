"""Tests for the attack-response layer (repro.recovery): policies, the
shadow reverse map, PTE-line reconstruction, row retirement, adaptive
rekeying, and the availability accounting the campaign/siege report."""

from dataclasses import asdict

import pytest

from repro.analysis.correction_eval import walked_pte_lines, workload_process
from repro.analysis.siege_eval import run_siege_cell
from repro.common.config import PAGE_BYTES, PTGuardConfig
from repro.common.errors import ConfigurationError
from repro.faults.campaign import run_campaign_cell
from repro.harness.system import build_system
from repro.mmu.pte import X86PageTableEntry, make_x86_pte
from repro.recovery import (
    RECOVERY_POLICIES,
    RecoveryManager,
    RecoveryPolicy,
    ShadowEntry,
    ShadowMap,
    recovery_policy,
)
from repro.recovery.policy import policy_from_params

SEED = 7

#: Eight spread bit flips — beyond every best-effort correction step.
UNCORRECTABLE_BITS = [1, 2, 5, 9, 17, 33, 65, 129]


def _guarded_system(spare_rows=0, warm=32):
    """A guard-enabled machine with a warmed workload process."""
    config = PTGuardConfig(correction_enabled=True)
    system = build_system(ptguard=config, seed=SEED, spare_rows=spare_rows)
    process = workload_process(system, "povray", SEED)
    for vpn in sorted(process.frames)[:warm]:
        system.kernel.access_virtual(process, vpn * PAGE_BYTES)
    lines = walked_pte_lines(system, process)
    return system, process, lines


def _corrupt(system, line_address):
    """Drive an uncorrectable fault into a PTE line, verified detected."""
    system.dram.inject_fault(line_address, UNCORRECTABLE_BITS, scenario="test")
    response = system.controller.read_access(line_address, is_pte=True)
    assert response.pte_check_failed and not response.corrected
    return response


# -- policy -------------------------------------------------------------------


class TestRecoveryPolicy:
    def test_presets_gate_stages(self):
        assert set(RECOVERY_POLICIES) == {"none", "reconstruct", "retire", "full"}
        none = RECOVERY_POLICIES["none"]
        assert not (none.reconstruct_enabled or none.retire_enabled
                    or none.rekey_enabled)
        assert RECOVERY_POLICIES["reconstruct"].reconstruct_enabled
        assert not RECOVERY_POLICIES["reconstruct"].retire_enabled
        assert RECOVERY_POLICIES["retire"].retire_enabled
        assert not RECOVERY_POLICIES["retire"].rekey_enabled
        full = RECOVERY_POLICIES["full"]
        assert full.reconstruct_enabled and full.retire_enabled \
            and full.rekey_enabled

    def test_unknown_name_lists_valid_names_in_one_line(self):
        with pytest.raises(ConfigurationError) as excinfo:
            recovery_policy("bogus")
        message = str(excinfo.value)
        assert "\n" not in message
        assert "bogus" in message
        for name in RECOVERY_POLICIES:
            assert name in message

    def test_params_round_trip(self):
        policy = RecoveryPolicy(spare_rows=3, rekey_threshold=5)
        assert policy_from_params(policy.as_params()) == policy
        assert policy_from_params(None) is None

    def test_validation_rejects_bad_budgets(self):
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(retire_threshold=0)
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(spare_rows=-1)
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(rekey_threshold=0)
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(rekey_window=0)
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(trap_overhead_cycles=-1)


# -- shadow map ---------------------------------------------------------------


class TestShadowMap:
    def _entry(self, pid=1, address=0x1000, value=0x23, level=3):
        return ShadowEntry(pid=pid, level=level, entry_address=address,
                           value=value, virtual_address=0x4000, pfn=5)

    def test_record_lookup_overwrite(self):
        shadow = ShadowMap()
        shadow.record(self._entry(value=0x11))
        shadow.record(self._entry(value=0x22))  # same address: overwrite
        assert len(shadow) == 1
        assert shadow.lookup(0x1000).value == 0x22
        assert shadow.lookup(0x9999) is None

    def test_forget_and_forget_pid(self):
        shadow = ShadowMap()
        shadow.record(self._entry(pid=1, address=0x1000))
        shadow.record(self._entry(pid=1, address=0x1008))
        shadow.record(self._entry(pid=2, address=0x2000))
        shadow.forget(0x1000)
        shadow.forget(0x1000)  # double-forget is a no-op
        assert len(shadow) == 2
        assert shadow.forget_pid(1) == 1
        assert len(shadow) == 1
        assert shadow.lookup(0x2000).pid == 2

    def test_entries_in_line_covers_eight_slots(self):
        shadow = ShadowMap()
        shadow.record(self._entry(address=0x1000))  # slot 0
        shadow.record(self._entry(address=0x1038))  # slot 7
        shadow.record(self._entry(address=0x1040))  # next line
        in_line = list(shadow.entries_in_line(0x1000))
        assert [entry.entry_address for entry in in_line] == [0x1000, 0x1038]
        assert shadow.covers_line(0x1010)  # any address inside the line
        assert not shadow.covers_line(0x2000)

    def test_leaf_properties(self):
        entry = self._entry()
        assert entry.is_leaf and entry.vpn == 4
        inner = ShadowEntry(pid=1, level=1, entry_address=0x0, value=0x1)
        assert not inner.is_leaf and inner.vpn is None


# -- reconstruction -----------------------------------------------------------


class TestReconstruction:
    def test_uncorrectable_line_rebuilt_and_reverified(self):
        system, process, lines = _guarded_system()
        kernel = system.kernel
        target = lines[0]
        _corrupt(system, target)

        ok, cycles = kernel.reconstruct_pte_line(target)
        assert ok and cycles > 0
        clean = system.controller.read_access(target, is_pte=True)
        assert not clean.pte_check_failed
        # Translations still resolve to the authoritative frames.
        vpn = sorted(process.frames)[0]
        physical = kernel.access_virtual(process, vpn * PAGE_BYTES)
        assert physical == process.frames[vpn] * PAGE_BYTES
        assert kernel.stats.get("pte_lines_reconstructed") >= 1

    def test_stale_shadow_value_repaired_from_frames(self):
        system, process, lines = _guarded_system()
        kernel = system.kernel
        # Find a leaf shadow entry on a walked line and poison its value.
        target, victim = None, None
        for line in lines:
            for entry in kernel.shadow.entries_in_line(line):
                if entry.is_leaf and entry.vpn in process.frames:
                    target, victim = line, entry
                    break
            if victim is not None:
                break
        assert victim is not None, "no leaf shadow entry on walked lines"
        authoritative = process.frames[victim.vpn]
        stale_pfn = (authoritative + 1) % 1024
        decoded = X86PageTableEntry(victim.value)
        victim.value = make_x86_pte(
            stale_pfn, writable=decoded.writable,
            user=decoded.user_accessible, no_execute=decoded.no_execute,
        )
        victim.pfn = stale_pfn

        _corrupt(system, target)
        ok, _ = kernel.reconstruct_pte_line(target)
        assert ok
        assert kernel.stats.get("stale_shadow_repairs") >= 1
        # The repaired slot carries the authoritative PFN again.
        repaired = kernel.shadow.lookup(victim.entry_address)
        assert repaired.pfn == authoritative

    def test_gone_mapping_rebuilt_as_hole(self):
        system, process, lines = _guarded_system()
        kernel = system.kernel
        target, victim = None, None
        for line in lines:
            for entry in kernel.shadow.entries_in_line(line):
                if entry.is_leaf and entry.vpn in process.frames:
                    target, victim = line, entry
                    break
            if victim is not None:
                break
        assert victim is not None
        del process.frames[victim.vpn]

        _corrupt(system, target)
        ok, _ = kernel.reconstruct_pte_line(target)
        assert ok
        assert kernel.stats.get("stale_shadow_drops") >= 1
        assert kernel.shadow.lookup(victim.entry_address) is None

    def test_dead_owner_shadow_dropped_and_line_uncovered(self):
        system, _, _ = _guarded_system()
        kernel = system.kernel
        orphan_line = 0x100000  # nothing maps here
        kernel.shadow.record(ShadowEntry(
            pid=424242, level=3, entry_address=orphan_line,
            value=make_x86_pte(5), virtual_address=0x7000, pfn=5,
        ))
        ok, cycles = kernel.reconstruct_pte_line(orphan_line)
        assert not ok and cycles == 0
        assert kernel.stats.get("stale_shadow_drops") == 1
        assert kernel.stats.get("reconstruction_misses") == 1
        assert kernel.shadow.lookup(orphan_line) is None


# -- retirement ---------------------------------------------------------------


class TestRowRetirement:
    def test_retire_after_threshold_and_clean_slate(self):
        system, _, lines = _guarded_system(spare_rows=2)
        manager = RecoveryManager(
            system.kernel,
            RecoveryPolicy(retire_threshold=2, spare_rows=2,
                           rekey_enabled=False),
        )
        target = lines[0]
        row_key = system.dram.mapper.row_key_of(target)

        _corrupt(system, target)
        first = manager.handle_pte_check_failed(target)
        assert first.action == "reconstructed" and not first.retired
        assert manager.row_fault_count(row_key) == 1

        _corrupt(system, target)
        second = manager.handle_pte_check_failed(target)
        assert second.action == "retired" and second.retired
        assert second.stages == ("reconstruct", "retire")
        assert second.latency_cycles > first.latency_cycles
        assert system.dram.is_retired(row_key)
        # Retirement wipes the row's fault history (spare starts clean).
        assert manager.row_fault_count(row_key) == 0
        # The retired row's lines still verify through the remap.
        assert not system.controller.read_access(
            target, is_pte=True
        ).pte_check_failed

    def test_spare_exhaustion_falls_back_to_reconstruction(self):
        system, _, lines = _guarded_system(spare_rows=1)
        manager = RecoveryManager(
            system.kernel,
            RecoveryPolicy(retire_threshold=1, spare_rows=1,
                           rekey_enabled=False),
        )
        mapper = system.dram.mapper
        first_row = mapper.row_key_of(lines[0])
        other = next(
            line for line in lines if mapper.row_key_of(line) != first_row
        )

        _corrupt(system, lines[0])
        assert manager.handle_pte_check_failed(lines[0]).retired
        assert system.dram.spare_rows_free == 0

        _corrupt(system, other)
        event = manager.handle_pte_check_failed(other)
        # Budget gone: the retire stage ran but could not migrate; the
        # fault is still absorbed by reconstruction, not a panic.
        assert "retire" in event.stages and not event.retired
        assert event.recovered and event.action == "reconstructed"
        assert system.controller.stats.get("row_retirements_exhausted") >= 1

    def test_spare_exhaustion_mid_siege_keeps_guarantees(self):
        policy = RecoveryPolicy(retire_threshold=1, spare_rows=1,
                                rekey_enabled=False)
        cell = run_siege_cell("high", 16, windows=4, seed=SEED,
                              recovery=policy.as_params())
        assert cell.spare_rows_left == 0
        assert cell.rows_retired == 1  # budget, not demand, bounded this
        assert cell.outcome("silent_corruption") == 0
        assert cell.injections == 64
        assert 0.0 <= cell.availability <= 1.0


# -- spare exhaustion x rekey trigger in one event ----------------------------


class TestExhaustionRekeyCollision:
    """Spare-row exhaustion landing in the same event as a rekey trigger:
    stage order is deterministic (retire fallback resolves before any
    rekey accounting) and no cycles are charged twice."""

    def _manager(self, system):
        return RecoveryManager(
            system.kernel,
            RecoveryPolicy(
                retire_threshold=1, spare_rows=1, rekey_threshold=2,
                rekey_window=8, rekey_cooldown=0,
            ),
        )

    def test_retire_fallback_resolves_before_rekey_accounting(self):
        system, _, lines = _guarded_system(spare_rows=1)
        manager = self._manager(system)
        mapper = system.dram.mapper
        first_row = mapper.row_key_of(lines[0])
        other = next(
            line for line in lines if mapper.row_key_of(line) != first_row
        )

        _corrupt(system, lines[0])
        first = manager.handle_pte_check_failed(lines[0])
        assert first.retired and not first.rekeyed
        assert system.dram.spare_rows_free == 0

        # Second fault: the last spare is gone AND the second incident
        # crosses the rekey threshold — both verdicts land in this one
        # event, in stage order.
        _corrupt(system, other)
        event = manager.handle_pte_check_failed(other)
        assert event.stages == ("reconstruct", "retire", "rekey")
        assert not event.retired and event.rekeyed and event.recovered

        # The failed migration charges nothing; every attributed stage
        # sums exactly to the event latency (no double counting).
        assert "migrate" not in event.stage_cycles
        assert set(event.stage_cycles) == {"trap", "reconstruct", "rekey"}
        assert sum(event.stage_cycles.values()) == event.latency_cycles
        assert manager.stats.get("retire_fallbacks") == 1
        assert system.controller.stats.get("row_retirements_exhausted") == 1

    def test_exhaustion_latches_and_stats_stay_edge_counted(self):
        system, _, lines = _guarded_system(spare_rows=1)
        manager = self._manager(system)
        _corrupt(system, lines[0])
        assert manager.handle_pte_check_failed(lines[0]).retired
        for _ in range(3):
            # Re-templated disturbance: the adaptive attacker relocates
            # the line's backing cells after the migration.
            _corrupt(system, system.dram.remap_address(lines[0]))
            event = manager.handle_pte_check_failed(lines[0])
        # After the first failed attempt the budget verdict is latched:
        # later events skip the retire stage instead of re-attempting
        # (and re-counting) an exhausted migration.
        assert "retire" not in event.stages
        assert manager.stats.get("retire_fallbacks") == 1
        assert system.controller.stats.get("row_retirements_exhausted") == 1

    def test_stage_cycles_always_sum_to_latency(self):
        for name in ("reconstruct", "retire", "full"):
            system, _, lines = _guarded_system(spare_rows=2)
            manager = RecoveryManager(
                system.kernel, RECOVERY_POLICIES[name]
            )
            for _ in range(3):
                _corrupt(system, system.dram.remap_address(lines[0]))
                event = manager.handle_pte_check_failed(lines[0])
                assert sum(event.stage_cycles.values()) == event.latency_cycles

    def test_adaptive_attacker_exhaustion_stats_stay_consistent(self):
        from repro.analysis.siege_eval import run_adaptive_siege_cell

        policy = RecoveryPolicy(
            retire_threshold=1, spare_rows=1, rekey_threshold=2,
            rekey_window=8, rekey_cooldown=0,
        ).as_params()
        cell = run_adaptive_siege_cell(
            "spare_exhaustion", windows=6, seed=SEED, recovery=policy
        )
        # The latch keeps the exhausted-budget stat an edge counter even
        # while the adaptive attacker keeps spreading faults.
        assert cell.rows_retired == 1
        assert cell.retirements_exhausted == 1
        assert cell.spare_rows_left == 0
        # Attribution identity: the four causes sum exactly to downtime.
        assert (
            cell.downtime_recovery_cycles
            + cell.downtime_migration_cycles
            + cell.downtime_rekey_cycles
            + cell.downtime_panic_cycles
        ) == cell.downtime_cycles
        assert cell.outcome("silent_corruption") == 0


# -- adaptive rekeying --------------------------------------------------------


class TestAdaptiveRekey:
    def test_incident_storm_rotates_epoch_with_cooldown(self):
        system, _, lines = _guarded_system()
        manager = RecoveryManager(
            system.kernel,
            RecoveryPolicy(retire_enabled=False, rekey_threshold=2,
                           rekey_window=8, rekey_cooldown=4),
        )
        epoch_before = system.guard.epoch
        _corrupt(system, lines[0])
        first = manager.handle_pte_check_failed(lines[0])
        assert not first.rekeyed  # one incident, threshold is two
        _corrupt(system, lines[0])
        second = manager.handle_pte_check_failed(lines[0])
        assert second.rekeyed and "rekey" in second.stages
        assert system.guard.epoch == epoch_before + 1
        assert second.latency_cycles > first.latency_cycles  # sweep cost
        # Two more incidents inside the cooldown: suppressed, not rotated.
        _corrupt(system, lines[0])
        manager.handle_pte_check_failed(lines[0])
        _corrupt(system, lines[0])
        third = manager.handle_pte_check_failed(lines[0])
        assert not third.rekeyed
        assert system.guard.stats.get("adaptive_rekeys_suppressed") >= 1
        assert manager.stats.get("adaptive_rekeys") == 1

    def test_rekey_mid_campaign_trial_stays_sound_and_deterministic(self):
        """A rekey firing while a trial holds a raw snapshot must not
        corrupt the restore path: the cell re-encodes the logical line
        under the new epoch instead of writing stale-epoch bytes back."""
        recovery = RecoveryPolicy(
            retire_enabled=False, rekey_threshold=1, rekey_window=4,
            rekey_cooldown=0,
        ).as_params()
        first = run_campaign_cell("pte_double", 60, SEED, recovery=recovery)
        assert first.adaptive_rekeys >= 1
        assert first.outcome("silent_corruption") == 0
        assert first.outcome("sim_crash") == 0
        second = run_campaign_cell("pte_double", 60, SEED, recovery=recovery)
        assert asdict(first) == asdict(second)


# -- acceptance: availability accounting --------------------------------------


class TestAvailabilityAcceptance:
    def test_thousand_trial_campaign_recovers_and_replays_identically(self):
        """The issue's acceptance bar: a seeded 1000-trial uncorrectable
        campaign under the full policy keeps availability >= 0.99 with
        zero silent corruption, byte-identical across two runs."""
        recovery = RecoveryPolicy().as_params()
        first = run_campaign_cell("pte_double", 1000, 11, recovery=recovery)
        assert first.trials == 1000
        assert first.outcome("silent_corruption") == 0
        assert first.outcome("detected_uncorrectable") == 0  # all absorbed
        assert first.recovered >= 1
        assert first.availability >= 0.99
        assert first.exposure_cycles == 1000 * 2_000_000
        assert first.recovery_latency_cycles  # honest per-event latencies
        assert all(lat > 0 for lat in first.recovery_latency_cycles)

        second = run_campaign_cell("pte_double", 1000, 11, recovery=recovery)
        assert asdict(first) == asdict(second)

    def test_none_policy_matches_seed_behaviour(self):
        recovery = recovery_policy("none").as_params()
        with_policy = run_campaign_cell("pte_double", 40, SEED,
                                        recovery=recovery)
        without = run_campaign_cell("pte_double", 40, SEED)
        # No stage enabled: every uncorrectable fault stays a panic and
        # the outcome histogram mirrors the policy-free cell otherwise.
        assert with_policy.outcome("panic") == \
            without.outcome("detected_uncorrectable")
        assert with_policy.outcome("detected_corrected") == \
            without.outcome("detected_corrected")
        assert with_policy.availability < 1.0
