"""Unit tests for the fabric's resilience layer (repro.harness.parallel).

Contract under test: transient failures (worker kills, wall-clock
timeouts) are retried under a bounded budget and the sweep still
completes with correct results; permanent failures (the job's own code
raising, unknown kinds) fail fast with the remote traceback attached;
pool-level collapse degrades to in-process serial execution instead of
aborting; the cache detects and quarantines corrupt entries instead of
crashing or silently missing; and interrupted sweeps leave a journal
that a rerun resumes from, recomputing only the missing cells.
"""

from __future__ import annotations

import json
import multiprocessing
import time

import pytest

from repro.common.errors import (
    ConfigurationError,
    JobExecutionError,
    JobTimeoutError,
    RetryBudgetExceededError,
    SimJobError,
    UnknownJobKindError,
    WorkerCrashError,
)
from repro.harness import parallel
from repro.harness.chaos import ChaosPolicy, corrupt_cache_entry
from repro.harness.parallel import (
    ExecutionPolicy,
    ResultCache,
    SimJob,
    SweepJournal,
    default_workers,
    execution_policy,
    last_run_stats,
    register_job_kind,
    run_jobs,
    sweep_id,
)


def _double(params):
    return params["value"] * 2


def _sleep(params):
    time.sleep(params["seconds"])
    return params["seconds"]


def _explode(params):
    raise ValueError(f"boom on {params['cell']}")


register_job_kind("res_double", _double)
register_job_kind("res_sleep", _sleep)
register_job_kind("res_explode", _explode)

DOUBLES = [SimJob("res_double", {"value": v}, label=f"d{v}") for v in range(4)]


def _fast_policy(**overrides) -> ExecutionPolicy:
    base = dict(retries=2, backoff_base_s=0.0, backoff_cap_s=0.0)
    base.update(overrides)
    return ExecutionPolicy(**base)


# -- taxonomy -----------------------------------------------------------------


class TestTaxonomy:
    def test_transient_vs_permanent_classification(self):
        assert JobTimeoutError.transient and WorkerCrashError.transient
        assert not JobExecutionError.transient
        assert not UnknownJobKindError.transient
        assert not RetryBudgetExceededError.transient

    def test_all_derive_from_simjoberror(self):
        for cls in (
            JobExecutionError,
            UnknownJobKindError,
            JobTimeoutError,
            WorkerCrashError,
            RetryBudgetExceededError,
        ):
            assert issubclass(cls, SimJobError)
        # pre-taxonomy callers caught RuntimeError; keep that working
        assert issubclass(SimJobError, RuntimeError)


# -- retry / timeout / crash --------------------------------------------------


class TestTransientRecovery:
    def test_killed_workers_are_respawned_and_jobs_retried(self):
        policy = _fast_policy(chaos=ChaosPolicy(seed=1, kill=1.0))
        results = run_jobs(DOUBLES, workers=2, policy=policy)
        assert results == [0, 2, 4, 6]
        stats = last_run_stats()
        assert stats.crashes == 4 and stats.retries == 4
        assert not stats.degraded

    def test_over_deadline_jobs_are_killed_and_retried(self):
        policy = _fast_policy(timeout_s=1.0, chaos=ChaosPolicy(seed=1, delay=1.0))
        results = run_jobs(DOUBLES, workers=2, policy=policy)
        assert results == [0, 2, 4, 6]
        stats = last_run_stats()
        assert stats.timeouts == 4 and stats.retries == 4

    def test_retry_budget_exhaustion_raises_with_cause(self):
        jobs = [
            SimJob("res_sleep", {"seconds": 30}, label="hang"),
            SimJob("res_double", {"value": 1}),
        ]
        policy = _fast_policy(timeout_s=0.4, retries=1)
        with pytest.raises(RetryBudgetExceededError) as excinfo:
            run_jobs(jobs, workers=2, policy=policy)
        assert "hang" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, JobTimeoutError)
        assert last_run_stats().timeouts == 2  # attempt 0 + attempt 1

    def test_permanent_failure_is_not_retried(self):
        jobs = [
            SimJob("res_double", {"value": 1}),
            SimJob("res_explode", {"cell": "fig6/povray"}),
        ]
        with pytest.raises(JobExecutionError) as excinfo:
            run_jobs(jobs, workers=2, policy=_fast_policy())
        message = str(excinfo.value)
        assert "res_explode" in message and "fig6/povray" in message
        assert "ValueError" in message and "Traceback" in message
        assert last_run_stats().retries == 0


class TestGracefulDegradation:
    def test_pool_collapse_falls_back_to_serial(self, caplog):
        policy = _fast_policy(
            retries=5, max_worker_restarts=1, chaos=ChaosPolicy(seed=1, kill=1.0)
        )
        with caplog.at_level("WARNING", logger="repro.harness.parallel"):
            results = run_jobs(DOUBLES, workers=2, policy=policy)
        assert results == [0, 2, 4, 6]
        assert last_run_stats().degraded
        assert any("falling back" in r.message for r in caplog.records)

    def test_fallback_disabled_raises_worker_crash(self):
        policy = _fast_policy(
            retries=5,
            max_worker_restarts=0,
            fallback_serial=False,
            chaos=ChaosPolicy(seed=1, kill=1.0),
        )
        with pytest.raises(WorkerCrashError, match="degraded"):
            run_jobs(DOUBLES, workers=2, policy=policy)


# -- start-method pinning -----------------------------------------------------


class TestStartMethod:
    def test_prefers_fork_when_available(self):
        assert parallel._pool_context().get_start_method() == "fork"

    def test_fallback_chain_forkserver_then_spawn(self, monkeypatch):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn", "forkserver"]
        )
        assert parallel._pool_context().get_start_method() == "forkserver"
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        assert parallel._pool_context().get_start_method() == "spawn"

    def test_env_override_and_rejection(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        assert parallel._pool_context().get_start_method() == "spawn"
        monkeypatch.setenv("REPRO_START_METHOD", "no-such-method")
        with pytest.raises(ConfigurationError, match="no-such-method"):
            parallel._pool_context()

    def test_no_method_available_is_configuration_error(self, monkeypatch):
        monkeypatch.setattr(multiprocessing, "get_all_start_methods", lambda: [])
        with pytest.raises(ConfigurationError):
            parallel._pool_context()


# -- registry / env parsing (satellite coverage) ------------------------------


class TestRegistryAndEnv:
    def test_unknown_kind_is_unknown_job_kind_error(self):
        with pytest.raises(UnknownJobKindError, match="unknown job kind"):
            run_jobs([SimJob("no_such_kind", {})], workers=1)

    def test_unknown_kind_in_worker_surfaces_kind_name(self):
        jobs = [SimJob("no_such_kind", {}), SimJob("res_double", {"value": 1})]
        with pytest.raises(SimJobError, match="no_such_kind"):
            run_jobs(jobs, workers=2, policy=_fast_policy())

    def test_remote_traceback_propagates_worker_frames(self):
        jobs = [
            SimJob("res_explode", {"cell": "x"}),
            SimJob("res_double", {"value": 0}),
        ]
        with pytest.raises(JobExecutionError) as excinfo:
            run_jobs(jobs, workers=2, policy=_fast_policy())
        # the worker-side frame (the job function itself) is visible
        assert "_explode" in str(excinfo.value)

    def test_default_workers_parsing_fallbacks(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert default_workers() == 7
        monkeypatch.setenv("REPRO_WORKERS", "-3")
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "nope")
        monkeypatch.setattr("os.cpu_count", lambda: 5)
        assert default_workers() == 5
        monkeypatch.setenv("REPRO_WORKERS", "")
        assert default_workers() == 5

    def test_policy_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_RETRIES", "4")
        monkeypatch.setenv("REPRO_CHAOS", "seed=9,kill=0.5")
        policy = ExecutionPolicy.from_env()
        assert policy.timeout_s == 12.5 and policy.retries == 4
        assert policy.chaos == ChaosPolicy(seed=9, kill=0.5)

    def test_policy_from_env_ignores_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMEOUT", "soon")
        monkeypatch.setenv("REPRO_RETRIES", "many")
        monkeypatch.setenv("REPRO_CHAOS", "entropy")
        policy = ExecutionPolicy.from_env()
        assert policy.timeout_s is None and policy.retries == 2
        assert policy.chaos is None


# -- cache integrity ----------------------------------------------------------


def _job(**overrides) -> SimJob:
    params = {"value": 21}
    params.update(overrides)
    return SimJob("res_double", params)


class TestCacheIntegrity:
    def test_digest_is_stored_and_verified(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, 42)
        entry = json.loads(cache._path(job.key()).read_text(encoding="utf-8"))
        assert entry["digest"] == parallel.payload_digest(42)
        assert cache.get(job) == 42 and cache.corrupt == 0

    def test_tampered_payload_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, 42)
        path = cache._path(job.key())
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["result"] = 43  # valid JSON, wrong digest
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(job) is None
        assert cache.corrupt == 1
        assert (cache.quarantine_dir / path.name).exists()
        assert not path.exists()

    def test_truncated_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, 42)
        path = cache._path(job.key())
        path.write_text(path.read_text(encoding="utf-8")[:20], encoding="utf-8")
        assert cache.get(job) is None and cache.corrupt == 1

    def test_corrupt_entry_recomputed_via_run_jobs(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        run_jobs([job], workers=1, cache=cache)
        corrupt_cache_entry(cache, job)
        fresh_cache = ResultCache(tmp_path)
        assert run_jobs([job], workers=1, cache=fresh_cache) == [42]
        assert fresh_cache.corrupt == 1
        stats = last_run_stats()
        assert stats.quarantined == 1 and stats.fresh == 1
        # the recompute healed the entry: next lookup is a clean hit
        final_cache = ResultCache(tmp_path)
        assert final_cache.get(job) == 42

    def test_io_errors_are_counted_and_warned_once(self, tmp_path, monkeypatch, caplog):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, 42)

        def denied(self, *args, **kwargs):
            raise PermissionError(13, "Permission denied", str(self))

        monkeypatch.setattr(type(cache._path(job.key())), "read_text", denied)
        with caplog.at_level("WARNING", logger="repro.harness.parallel"):
            assert cache.get(job) is None
            assert cache.get(job) is None
        assert cache.io_errors == 2 and cache.misses == 2
        assert cache.corrupt == 0  # an EACCES is not corruption
        warnings = [r for r in caplog.records if "cache read failed" in r.message]
        assert len(warnings) == 1  # reported once, counted thereafter
        assert cache.stats()["io_errors"] == 2


# -- quarantine cap -----------------------------------------------------------


class TestQuarantineCap:
    def _quarantine_n(self, cache, count):
        """Create ``count`` distinct corrupt entries and trip the read
        path on each, so they all land in the quarantine directory."""
        for i in range(count):
            job = _job(value=1000 + i)
            cache.put(job, i)
            corrupt_cache_entry(cache, job)
            assert cache.get(job) is None

    def test_quarantine_stays_bounded_and_evicts_oldest(self, tmp_path, caplog):
        cache = ResultCache(tmp_path, quarantine_limit=3)
        with caplog.at_level("WARNING", logger="repro.harness.parallel"):
            self._quarantine_n(cache, 8)
        remaining = list(cache.quarantine_dir.glob("*.json"))
        assert len(remaining) == 3
        assert cache.quarantine_evictions == 5
        assert cache.stats()["quarantine_evictions"] == 5
        assert cache.corrupt == 8  # every corruption still counted
        # one summary line per eviction batch, naming the env override
        capped = [r for r in caplog.records if "quarantine at cap" in r.message]
        assert capped and "REPRO_QUARANTINE_LIMIT" in capped[0].getMessage()

    def test_env_sets_default_limit(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QUARANTINE_LIMIT", "2")
        cache = ResultCache(tmp_path)
        self._quarantine_n(cache, 5)
        assert len(list(cache.quarantine_dir.glob("*.json"))) == 2
        assert cache.quarantine_evictions == 3

    def test_nonpositive_limit_disables_the_cap(self, tmp_path):
        cache = ResultCache(tmp_path, quarantine_limit=0)
        self._quarantine_n(cache, 6)
        assert len(list(cache.quarantine_dir.glob("*.json"))) == 6
        assert cache.quarantine_evictions == 0

    def test_default_cap_is_64(self, tmp_path):
        assert ResultCache(tmp_path).quarantine_limit == 64


# -- journal / resume ---------------------------------------------------------


class TestSweepJournal:
    def test_truncated_tail_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.append({"event": "sweep_start", "jobs": 2})
        journal.append({"event": "job_done", "key": "aa"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "job_done", "key": "bb"')  # torn write
        records = SweepJournal.load(path)
        assert [r["event"] for r in records] == ["sweep_start", "job_done"]

    def test_missing_file_loads_empty(self, tmp_path):
        assert SweepJournal.load(tmp_path / "absent.jsonl") == []

    def test_sweep_id_depends_on_job_keys_only(self):
        a = [SimJob("res_double", {"value": 1}, label="one")]
        b = [SimJob("res_double", {"value": 1}, label="other")]
        assert sweep_id(a) == sweep_id(b)
        assert sweep_id(a) != sweep_id([SimJob("res_double", {"value": 2})])

    def test_completed_sweep_writes_full_journal(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_jobs(DOUBLES, workers=1, cache=cache)
        path = tmp_path / "journals" / f"{sweep_id(DOUBLES)}.jsonl"
        events = [r["event"] for r in SweepJournal.load(path)]
        assert events[0] == "sweep_start" and events[-1] == "sweep_complete"
        assert events.count("job_done") == 4

    def test_interrupted_sweep_resumes_missing_cells_only(self, tmp_path):
        cache = ResultCache(tmp_path)
        policy = _fast_policy(chaos=ChaosPolicy(seed=1, abort_after=2))
        with pytest.raises(KeyboardInterrupt):
            run_jobs(DOUBLES, workers=2, cache=cache, policy=policy)
        path = tmp_path / "journals" / f"{sweep_id(DOUBLES)}.jsonl"
        interrupted = SweepJournal.load(path)
        done_before = sum(1 for r in interrupted if r["event"] == "job_done")
        assert done_before == 2
        assert not any(r["event"] == "sweep_complete" for r in interrupted)

        resumed_cache = ResultCache(tmp_path)
        results = run_jobs(DOUBLES, workers=2, cache=resumed_cache)
        assert results == [0, 2, 4, 6]
        stats = last_run_stats()
        assert stats.cached == 2 and stats.fresh == 2
        assert stats.resumed_cells == 2
        records = SweepJournal.load(path)
        assert any(r["event"] == "sweep_complete" for r in records)
        final = [r for r in records if r["event"] == "sweep_complete"][-1]
        assert final["cached"] == 2 and final["fresh"] == 2


# -- chaos policy parsing -----------------------------------------------------


class TestChaosSpec:
    def test_round_trip_spec(self):
        policy = ChaosPolicy.from_spec("seed=3, kill=0.2, delay=0.1, corrupt=0.05")
        assert policy == ChaosPolicy(seed=3, kill=0.2, delay=0.1, corrupt=0.05)
        assert ChaosPolicy.from_spec("abort_after=7").abort_after == 7

    def test_bad_specs_rejected(self):
        for spec in ("kill", "kill=1.5", "frobnicate=1", "abort_after=0", "seed=x"):
            with pytest.raises(ValueError):
                ChaosPolicy.from_spec(spec)

    def test_decisions_are_deterministic_and_seed_dependent(self):
        keys = [f"key-{i}" for i in range(256)]
        one = ChaosPolicy(seed=1, kill=0.25)
        replay = ChaosPolicy(seed=1, kill=0.25)
        other = ChaosPolicy(seed=2, kill=0.25)
        verdicts = [one.decide(k, "kill") for k in keys]
        assert verdicts == [replay.decide(k, "kill") for k in keys]
        assert verdicts != [other.decide(k, "kill") for k in keys]
        fraction = sum(verdicts) / len(verdicts)
        assert 0.1 < fraction < 0.4  # roughly the requested probability

    def test_zero_probability_never_fires(self):
        policy = ChaosPolicy(seed=1)
        assert not any(
            policy.decide(f"k{i}", channel)
            for i in range(64)
            for channel in ("kill", "delay", "corrupt")
        )


class TestExecutionPolicyContext:
    def test_context_manager_restores_previous(self):
        inner = ExecutionPolicy(retries=9)
        before = parallel.get_execution_policy()
        with execution_policy(inner):
            assert parallel.get_execution_policy() is inner
        assert parallel.get_execution_policy() is before
