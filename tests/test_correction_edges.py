"""Edge-case tests for core/correction.py feeding the fault taxonomy:
all-zero lines, the exactly-4-set-bits boundary of the reset-zero-PTE
step, and double-bit faults that must land in detected+uncorrectable."""

import pytest

from repro.core import pattern
from repro.core.correction import CorrectionEngine
from repro.core.engine import MACEngine
from repro.crypto.mac import Blake2LineMAC
from repro.mmu.pte import make_x86_pte

ADDRESS = 0x40000


@pytest.fixture()
def engine():
    return MACEngine(Blake2LineMAC(bytes(range(32))), max_phys_bits=40,
                     soft_match_k=4)


def stored(engine, ptes):
    line = pattern.join_ptes(ptes)
    return pattern.embed_mac(line, engine.compute(line, ADDRESS)), line


def correct(engine, faulty):
    return CorrectionEngine(engine).correct(faulty, ADDRESS)


class TestAllZeroLine:
    def test_clean_zero_line_soft_matches(self, engine):
        faulty, logical = stored(engine, [0] * 8)
        result = correct(engine, faulty)
        assert result.winning_step == "soft_match"
        assert pattern.mask_unprotected(result.corrected_line, 40) == \
            pattern.mask_unprotected(logical, 40)

    def test_single_flip_in_zero_line_corrected(self, engine):
        faulty_line, logical = stored(engine, [0] * 8)
        damaged = bytearray(faulty_line)
        damaged[3 * 8 + 2] ^= 0x10  # one PFN bit of PTE 3
        result = correct(engine, bytes(damaged))
        assert result.corrected_line is not None
        assert pattern.mask_unprotected(result.corrected_line, 40) == \
            pattern.mask_unprotected(logical, 40)

    def test_three_flips_in_one_zero_pte_reset_to_zero(self, engine):
        """Three set bits <= almost_zero_threshold: reset-zero recovers a
        multi-bit fault flip-and-check cannot."""
        faulty_line, logical = stored(engine, [0] * 8)
        damaged = bytearray(faulty_line)
        for bit in (13, 21, 34):  # three PFN bits of PTE 2
            damaged[2 * 8 + bit // 8] ^= 1 << (bit % 8)
        result = correct(engine, bytes(damaged))
        assert result.corrected_line is not None
        assert result.winning_step == "reset_zero_ptes"
        assert pattern.mask_unprotected(result.corrected_line, 40) == \
            pattern.mask_unprotected(logical, 40)


class TestResetZeroBoundary:
    """The reset step zeroes PTEs with popcount(data bits) <= 4."""

    def test_reset_applies_at_exactly_four_set_bits(self, engine):
        correction = CorrectionEngine(engine)
        pte_four = (1 << 13) | (1 << 21) | (1 << 30) | (1 << 38)
        assert correction._reset_almost_zero([pte_four] + [0] * 7)[0] == 0

    def test_reset_skips_five_set_bits(self, engine):
        correction = CorrectionEngine(engine)
        pte_five = (1 << 13) | (1 << 21) | (1 << 30) | (1 << 38) | (1 << 14)
        assert correction._reset_almost_zero([pte_five] + [0] * 7)[0] == pte_five

    def test_metadata_bits_do_not_count_toward_the_threshold(self, engine):
        """Embedded MAC/identifier bits are excluded from the popcount —
        a zero PTE stays 'almost zero' regardless of its metadata."""
        correction = CorrectionEngine(engine)
        pte = (0xFFF << pattern.MAC_FIELD_LOW) | (1 << 13)
        out = correction._reset_almost_zero([pte] + [0] * 7)[0]
        assert out == pte & correction._metadata_mask  # data zeroed, metadata kept

    def test_four_bit_fault_in_zero_pte_corrected_end_to_end(self, engine):
        faulty_line, logical = stored(
            engine, [make_x86_pte(0x2E5F3 + i, user=True) for i in range(4)] + [0] * 4
        )
        damaged = bytearray(faulty_line)
        for bit in (13, 21, 30, 38):  # four PFN bits of zero PTE 6
            damaged[6 * 8 + bit // 8] ^= 1 << (bit % 8)
        result = correct(engine, bytes(damaged))
        assert result.corrected_line is not None
        assert pattern.mask_unprotected(result.corrected_line, 40) == \
            pattern.mask_unprotected(logical, 40)

    def test_five_bit_fault_in_zero_pte_uncorrectable(self, engine):
        """One bit past the boundary: no strategy reaches a 5-bit fault."""
        faulty_line, _ = stored(
            engine, [make_x86_pte(0x2E5F3 + 37 * i + 11, user=True)
                     for i in range(4)] + [0] * 4
        )
        damaged = bytearray(faulty_line)
        for bit in (13, 21, 30, 38, 14):  # five PFN bits of zero PTE 6
            damaged[6 * 8 + bit // 8] ^= 1 << (bit % 8)
        result = correct(engine, bytes(damaged))
        assert result.corrected_line is None
        assert result.winning_step is None


class TestDoubleBitUncorrectable:
    def test_two_pfn_bits_across_ptes_uncorrectable(self, engine):
        """Double-bit PFN damage on non-contiguous PFNs exhausts every
        guess — the fault class behind detected+uncorrectable."""
        faulty_line, _ = stored(
            engine, [make_x86_pte(0x2E5F3 + 37 * i + 11, user=True)
                     for i in range(8)]
        )
        damaged = bytearray(faulty_line)
        damaged[1 * 8 + 2] ^= 0x10
        damaged[5 * 8 + 3] ^= 0x40
        result = correct(engine, bytes(damaged))
        assert result.corrected_line is None
        assert result.guesses_used == CorrectionEngine(engine).max_guesses

    def test_double_bit_reaches_os_as_detected_uncorrectable(self):
        """End-to-end: the same fault class through the memory controller
        lands in the taxonomy's detected+uncorrectable bucket and raises
        PTECheckFailed on the response bus — never silent corruption."""
        from repro.faults.campaign import run_campaign_cell

        cell = run_campaign_cell("pte_double", 60, seed=11)
        assert cell.outcome("detected_uncorrectable") >= 1
        assert cell.outcome("silent_corruption") == 0
        assert cell.detected == cell.trials
