"""Tests for the hardware page-table walker."""

import pytest

from repro.common.config import PAGE_BYTES, PTGuardConfig
from repro.common.errors import PageFaultError
from repro.core import pattern
from repro.harness.system import build_system
from repro.mmu.walker import ControllerPort, PageWalker, PTEIntegrityException


@pytest.fixture()
def machine():
    system = build_system()
    kernel = system.kernel
    process = kernel.create_process("w")
    vma = kernel.mmap(process, 8, populate=True)
    return system, process, vma


@pytest.fixture()
def guarded_machine():
    system = build_system(ptguard=PTGuardConfig())
    kernel = system.kernel
    process = kernel.create_process("w")
    vma = kernel.mmap(process, 8, populate=True)
    return system, process, vma


def fresh_walker(system):
    return PageWalker(ControllerPort(system.controller))


class TestTranslation:
    def test_walk_matches_software_translation(self, machine):
        system, process, vma = machine
        walker = fresh_walker(system)
        result = walker.translate(process.asid, process.page_table.root_pfn, vma.start)
        assert result.pfn * PAGE_BYTES == process.page_table.translate(vma.start)
        assert not result.tlb_hit and result.levels_walked == 4

    def test_second_walk_hits_tlb(self, machine):
        system, process, vma = machine
        walker = fresh_walker(system)
        walker.translate(process.asid, process.page_table.root_pfn, vma.start)
        result = walker.translate(process.asid, process.page_table.root_pfn, vma.start)
        assert result.tlb_hit and result.levels_walked == 0
        assert result.latency_cycles == walker.tlb_hit_latency

    def test_mmu_cache_shortens_neighbour_walks(self, machine):
        system, process, vma = machine
        walker = fresh_walker(system)
        walker.translate(process.asid, process.page_table.root_pfn, vma.start)
        result = walker.translate(
            process.asid, process.page_table.root_pfn, vma.start + PAGE_BYTES
        )
        # Upper three levels served by the MMU cache; only the leaf read.
        assert result.levels_walked == 1

    def test_page_fault_on_hole(self, machine):
        system, process, _ = machine
        walker = fresh_walker(system)
        with pytest.raises(PageFaultError):
            walker.translate(process.asid, process.page_table.root_pfn, 0xDEAD_BEEF_000)

    def test_tlb_entry_carries_permissions(self, machine):
        system, process, vma = machine
        walker = fresh_walker(system)
        result = walker.translate(process.asid, process.page_table.root_pfn, vma.start)
        assert result.entry.writable and result.entry.user_accessible
        assert result.entry.no_execute  # anon mapping defaults to NX


class TestGuardInteraction:
    def test_walk_strips_mac_before_tlb(self, guarded_machine):
        """The transparency invariant: no MAC bits ever reach the TLB."""
        system, process, vma = guarded_machine
        walker = fresh_walker(system)
        result = walker.translate(process.asid, process.page_table.root_pfn, vma.start)
        assert result.pfn < (1 << 28)  # a 4 GB machine PFN, not MAC junk
        assert result.pfn * PAGE_BYTES == process.page_table.translate(vma.start)

    def test_tampered_walk_raises(self, guarded_machine):
        system, process, vma = guarded_machine
        walker = fresh_walker(system)
        entry_address = process.page_table.leaf_entry_address(vma.start)
        system.memory.flip_bit(entry_address & ~63, 14)
        with pytest.raises(PTEIntegrityException) as excinfo:
            walker.translate(process.asid, process.page_table.root_pfn, vma.start)
        assert excinfo.value.level == 3
        assert walker.stats.get("integrity_failures") == 1

    def test_upper_level_tamper_also_detected(self, guarded_machine):
        system, process, vma = guarded_machine
        walker = fresh_walker(system)
        steps = process.page_table.walk_software(vma.start)
        pml4e_address = steps[0].entry_address
        system.memory.flip_bit(pml4e_address & ~63, 13)
        with pytest.raises(PTEIntegrityException) as excinfo:
            walker.translate(process.asid, process.page_table.root_pfn, vma.start)
        assert excinfo.value.level == 0

    def test_tlb_shields_until_invalidated(self, guarded_machine):
        """A cached translation keeps working after DRAM tampering — the
        walk only re-verifies once the TLB entry is gone (like hardware)."""
        system, process, vma = guarded_machine
        walker = fresh_walker(system)
        walker.translate(process.asid, process.page_table.root_pfn, vma.start)
        entry_address = process.page_table.leaf_entry_address(vma.start)
        system.memory.flip_bit(entry_address & ~63, 14)
        result = walker.translate(process.asid, process.page_table.root_pfn, vma.start)
        assert result.tlb_hit  # shielded
        walker.invalidate(process.asid, vma.start)
        with pytest.raises(PTEIntegrityException):
            walker.translate(process.asid, process.page_table.root_pfn, vma.start)


class TestInvalidate:
    def test_flush_all(self, machine):
        system, process, vma = machine
        walker = fresh_walker(system)
        walker.translate(process.asid, process.page_table.root_pfn, vma.start)
        walker.flush_all()
        result = walker.translate(process.asid, process.page_table.root_pfn, vma.start)
        assert not result.tlb_hit
