"""Tests for DRAM address mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import DRAMConfig
from repro.dram.geometry import AddressMapper, DRAMCoordinate


@pytest.fixture(scope="module")
def mapper():
    return AddressMapper(DRAMConfig())  # 4 GB, 1 ch, 1 rank, 16 banks, 8 KB rows


class TestRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 4 * 2**30 - 1))
    def test_decompose_compose(self, address):
        mapper = AddressMapper(DRAMConfig())
        coordinate = mapper.decompose(address)
        offset = address & 63
        assert mapper.compose(coordinate, offset) == address

    def test_out_of_range(self, mapper):
        with pytest.raises(ValueError):
            mapper.decompose(4 * 2**30)

    @given(st.integers(0, 4 * 2**30 - 1))
    def test_fast_row_key_agrees(self, address):
        mapper = AddressMapper(DRAMConfig())
        assert mapper.row_key_of(address) == mapper.decompose(address).row_key


class TestStructure:
    def test_consecutive_lines_same_row(self, mapper):
        a = mapper.decompose(0)
        b = mapper.decompose(64)
        assert a.row_key == b.row_key
        assert b.column == a.column + 1

    def test_row_capacity(self, mapper):
        assert mapper.lines_per_row == 8192 // 64

    def test_row_addresses_cover_row(self, mapper):
        row_key = mapper.decompose(0).row_key
        addresses = mapper.row_addresses(row_key)
        assert len(addresses) == mapper.lines_per_row
        assert len(set(addresses)) == len(addresses)
        for address in addresses:
            assert mapper.decompose(address).row_key == row_key

    def test_row_base_address_matches_list(self, mapper):
        row_key = (0, 0, 3, 77)
        assert mapper.row_base_address(row_key) == mapper.row_addresses(row_key)[0]

    def test_address_bits_consistent(self, mapper):
        assert 1 << mapper.address_bits == 4 * 2**30


class TestNeighbors:
    def test_middle_row(self, mapper):
        neighbors = mapper.neighbor_rows((0, 0, 0, 100), 1)
        assert neighbors == [(0, 0, 0, 99), (0, 0, 0, 101)]

    def test_distance_two(self, mapper):
        neighbors = mapper.neighbor_rows((0, 0, 0, 100), 2)
        assert neighbors == [(0, 0, 0, 98), (0, 0, 0, 102)]

    def test_edge_rows_clipped(self, mapper):
        assert mapper.neighbor_rows((0, 0, 0, 0), 1) == [(0, 0, 0, 1)]
        last = DRAMConfig().rows_per_bank - 1
        assert mapper.neighbor_rows((0, 0, 0, last), 1) == [(0, 0, 0, last - 1)]

    def test_neighbors_stay_in_bank(self, mapper):
        for neighbor in mapper.neighbor_rows((0, 0, 5, 50), 1):
            assert neighbor[:3] == (0, 0, 5)
