"""Tests for the sparse physical-memory store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.mem.memory import PhysicalMemory

SIZE = 1 << 20  # 1 MB is plenty for unit tests


@pytest.fixture()
def memory():
    return PhysicalMemory(SIZE)


class TestConstruction:
    def test_size_must_be_line_multiple(self):
        with pytest.raises(ConfigurationError):
            PhysicalMemory(100)

    def test_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            PhysicalMemory(0)


class TestLineAccess:
    def test_default_zero(self, memory):
        assert memory.read_line(0) == bytes(64)

    def test_write_read(self, memory):
        data = bytes(range(64))
        memory.write_line(128, data)
        assert memory.read_line(128) == data

    def test_unaligned_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.read_line(1)
        with pytest.raises(ValueError):
            memory.write_line(8, bytes(64))

    def test_out_of_range_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.read_line(SIZE)

    def test_wrong_length_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.write_line(0, bytes(63))

    def test_zero_write_reclaims_storage(self, memory):
        memory.write_line(0, bytes(range(64)))
        memory.write_line(0, bytes(64))
        assert len(memory) == 0


class TestByteAccess:
    def test_cross_line_write(self, memory):
        memory.write(60, b"ABCDEFGH")  # spans two lines
        assert memory.read(60, 8) == b"ABCDEFGH"
        assert memory.read_line(0)[60:] == b"ABCD"
        assert memory.read_line(64)[:4] == b"EFGH"

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(0, SIZE - 256),
        st.binary(min_size=1, max_size=200),
    )
    def test_write_read_roundtrip(self, address, data):
        memory = PhysicalMemory(SIZE)
        memory.write(address, data)
        assert memory.read(address, len(data)) == data

    def test_u64_roundtrip(self, memory):
        memory.write_u64(1000, 0xDEADBEEF_CAFEBABE)
        assert memory.read_u64(1000) == 0xDEADBEEF_CAFEBABE

    def test_zero_fill(self, memory):
        memory.write(0, b"\xff" * 100)
        memory.zero_fill(10, 50)
        assert memory.read(10, 50) == bytes(50)
        assert memory.read(0, 10) == b"\xff" * 10


class TestBitAccess:
    def test_read_bit(self, memory):
        memory.write_line(0, b"\x01" + bytes(63))
        assert memory.read_bit(0, 0) == 1
        assert memory.read_bit(0, 1) == 0

    def test_flip_bit(self, memory):
        memory.flip_bit(64, 100)
        assert memory.read_bit(64, 100) == 1
        memory.flip_bit(64, 100)
        assert memory.read_bit(64, 100) == 0

    @given(st.integers(0, 511))
    def test_flip_is_involution(self, bit):
        memory = PhysicalMemory(SIZE)
        before = memory.read_line(0)
        memory.flip_bit(0, bit)
        assert memory.read_line(0) != before
        memory.flip_bit(0, bit)
        assert memory.read_line(0) == before


class TestIntrospection:
    def test_touched_lines(self, memory):
        memory.write_line(64, bytes(range(64)))
        memory.write_line(256, bytes(range(64)))
        assert sorted(memory.touched_lines()) == [64, 256]
