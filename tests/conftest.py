"""Test-suite configuration: hypothesis tuned for CI boxes."""

from hypothesis import HealthCheck, settings

# Simulator-backed property tests construct real machines; generous
# deadlines keep them stable on slow single-core CI runners.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=50,
)
settings.load_profile("repro")
