"""Durable service state: WAL-backed crash recovery, exactly-once
results, disk-fault degradation.

The acceptance bar from the issue: a service killed mid-sweep and
restarted against the same ``--state-dir`` completes every accepted
submission with results byte-identical to an uninterrupted run,
recomputing only the cells the crash lost (exactly-once by sha256 job
addressing); disk faults and corrupt WAL records degrade — surfaced in
``health()``/``ready()`` — instead of crashing.

Crashes are simulated in-process: the service's ``crash_fn`` raises a
``BaseException`` subclass, which (like a real SIGKILL) bypasses the
dispatcher's ``except Exception`` error handling entirely — the
submission is left mid-flight with no finish record, exactly the state
a killed process leaves behind. Real-SIGKILL coverage lives in
``tests/test_service_cli.py``.
"""

from __future__ import annotations

import pytest

from repro.common.errors import (
    AdmissionRejected,
    RecoveredSubmissionError,
    SubmissionCancelled,
)
from repro.harness.parallel import (
    ResultCache,
    SimJob,
    last_run_stats,
    register_job_kind,
    run_jobs,
)
from repro.service import (
    FabricService,
    ServiceChaosPolicy,
    ServiceConfig,
    tenant_cache_root,
)
from repro.service.wal import encode_record


def _double(params):
    return {"doubled": params["value"] * 2}


def _fail(params):
    raise ValueError(f"cell {params['value']} is broken by design")


register_job_kind("rec_double", _double)
register_job_kind("rec_fail", _fail)


def _jobs(count, offset=0):
    return [
        SimJob(kind="rec_double", params={"value": index + offset})
        for index in range(count)
    ]


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class SimulatedKill(BaseException):
    """Stands in for SIGKILL: unwinds through everything, no cleanup."""


@pytest.fixture()
def clock():
    return Clock()


def _service(tmp_path, clock, state=True, **kwargs):
    config = ServiceConfig(
        queue_depth=4,
        dispatchers=1,
        rate_capacity=100.0,
        rate_refill_per_s=10.0,
        backend="threaded",
        workers=2,
    )
    return FabricService(
        cache_root=tmp_path / "cache",
        config=config,
        time_fn=clock,
        start=False,
        state_dir=(tmp_path / "state") if state else None,
        **kwargs,
    )


def _crash():
    raise SimulatedKill("service process died")


# -- the durable happy path ---------------------------------------------------


class TestDurableBasics:
    def test_wal_is_written_and_mode_is_durable(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        ticket = service.submit_sweep(jobs=_jobs(3), tenant="acme")
        service.drain()
        service.results(ticket)
        assert (tmp_path / "state" / "service.wal").exists()
        durability = service.durability()
        assert durability["mode"] == "durable"
        assert durability["wal"]["records_written"] == 3  # accept/dispatch/finish
        assert service.health()["durability"]["mode"] == "durable"
        assert service.ready()["durability"]["mode"] == "durable"
        service.close()

    def test_without_state_dir_mode_is_memory_only(self, tmp_path, clock):
        service = _service(tmp_path, clock, state=False)
        assert service.durability()["mode"] == "memory-only"
        assert service.health()["status"] == "ok"  # memory-only is not degraded
        service.close()

    def test_clean_shutdown_leaves_nothing_to_readopt(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        ticket = service.submit_sweep(jobs=_jobs(3), tenant="acme")
        service.drain()
        service.results(ticket)
        service.close()
        revived = _service(tmp_path, clock)
        assert revived.durability()["recovered_live"] == 0
        assert revived.durability()["recovered_terminal"] == 1
        revived.close()


# -- crash recovery -----------------------------------------------------------


class TestCrashRecovery:
    def test_queued_submission_survives_a_crash(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        ticket = service.submit_sweep(jobs=_jobs(4), tenant="acme")
        # No drain, no close: the process dies with the ticket queued.
        del service
        revived = _service(tmp_path, clock)
        assert revived.status(ticket)["state"] == "queued"
        assert revived.status(ticket)["recovered"] is True
        revived.drain()
        assert revived.results(ticket) == run_jobs(_jobs(4), workers=1)
        revived.close()

    def test_mid_sweep_crash_recomputes_only_missing_cells(self, tmp_path, clock):
        jobs = _jobs(8)
        chaos = ServiceChaosPolicy(seed=7, crash=1.0)
        point = chaos.crash_point("s-0001", len(jobs))
        assert point is not None and 1 <= point <= len(jobs)

        service = _service(tmp_path, clock, chaos=chaos, crash_fn=_crash)
        ticket = service.submit_sweep(jobs=jobs, tenant="acme")
        with pytest.raises(SimulatedKill):
            service.drain()

        revived = _service(tmp_path, clock)
        assert revived.durability()["recovered_live"] == 1
        assert revived.status(ticket)["state"] == "queued"
        revived.drain()
        results = revived.results(ticket)
        stats = last_run_stats()
        # Exactly-once by sha256 addressing: the cells cached before the
        # crash are adopted, only the gap is recomputed.
        assert stats.cached == point
        assert stats.fresh == len(jobs) - point
        assert results == run_jobs(jobs, workers=1)
        revived.close()

    def test_same_ticket_is_reissued(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        first = service.submit_sweep(jobs=_jobs(2), tenant="acme")
        del service
        revived = _service(tmp_path, clock)
        assert revived.status(first)["state"] == "queued"
        # New tickets continue the sequence -- never reuse a replayed id.
        fresh = revived.submit_sweep(jobs=_jobs(2, offset=50), tenant="acme")
        assert fresh != first
        assert int(fresh.split("-")[1]) > int(first.split("-")[1])
        revived.drain()
        revived.results(first), revived.results(fresh)
        revived.close()

    def test_done_results_rehydrate_from_cache_with_zero_recompute(
        self, tmp_path, clock
    ):
        jobs = _jobs(5)
        service = _service(tmp_path, clock)
        ticket = service.submit_sweep(jobs=jobs, tenant="acme")
        service.drain()
        expected = service.results(ticket)
        del service  # crash after completion, before any client re-read

        revived = _service(tmp_path, clock)
        view = revived.status(ticket)
        assert view["state"] == "done" and view["recovered"] is True
        assert revived.results(ticket, timeout=0.001) == expected
        stats = last_run_stats()
        assert stats.fresh == 0 and stats.cached == len(jobs)
        assert revived.health()["counters"]["rehydrated"] == 1
        revived.close()

    def test_tenant_isolation_survives_recovery(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        ticket_a = service.submit_sweep(jobs=_jobs(2), tenant="alice")
        ticket_b = service.submit_sweep(jobs=_jobs(2), tenant="bob")
        del service
        revived = _service(tmp_path, clock)
        revived.drain()
        assert revived.results(ticket_a) == revived.results(ticket_b)
        for tenant in ("alice", "bob"):
            root = tenant_cache_root(tmp_path / "cache", tenant)
            assert len(list(root.glob("??/*.json"))) == 2
        revived.close()


# -- recovered terminal states ------------------------------------------------


class TestRecoveredTerminalStates:
    def test_failed_submission_replays_as_typed_error(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        ticket = service.submit_sweep(
            jobs=[SimJob(kind="rec_fail", params={"value": 1})], tenant="acme"
        )
        service.drain()
        with pytest.raises(Exception):
            service.results(ticket)
        del service
        revived = _service(tmp_path, clock)
        with pytest.raises(RecoveredSubmissionError, match="broken by design"):
            revived.results(ticket, timeout=60.0)
        revived.close()

    def test_shed_submission_replays_as_admission_rejected(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        tickets = [
            service.submit_sweep(jobs=_jobs(1, offset=10 * n), tenant="greedy")
            for n in range(4)
        ]
        service.submit_sweep(jobs=_jobs(1, offset=99), tenant="alice")
        shed = tickets[0]
        with pytest.raises(AdmissionRejected) as excinfo:
            service.results(shed, timeout=60.0)
        assert excinfo.value.reason == "shed"
        del service
        revived = _service(tmp_path, clock)
        with pytest.raises(AdmissionRejected) as excinfo:
            revived.results(shed, timeout=60.0)
        assert excinfo.value.reason == "shed"
        revived.close()

    def test_cancelled_submission_replays_as_cancelled(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        ticket = service.submit_sweep(jobs=_jobs(2), tenant="acme")
        assert service.cancel(ticket)
        del service
        revived = _service(tmp_path, clock)
        with pytest.raises(SubmissionCancelled):
            revived.results(ticket, timeout=60.0)
        revived.close()


# -- damage tolerance ---------------------------------------------------------


class TestDamageTolerance:
    def test_unwritable_state_dir_degrades_not_crashes(self, tmp_path, clock):
        # state_dir's place is occupied by a *file*: every WAL open
        # fails, the cheapest deterministic ENOSPC/EIO stand-in.
        (tmp_path / "state").write_text("in the way")
        service = _service(tmp_path, clock)
        ticket = service.submit_sweep(jobs=_jobs(3), tenant="acme")
        service.drain()
        assert service.results(ticket) == run_jobs(_jobs(3), workers=1)
        assert service.durability()["mode"] == "degraded"
        assert service.health()["status"] == "degraded"
        assert bool(service.ready()) is True  # degraded still accepts work
        service.close()

    def test_cache_write_fault_degrades_and_completes(
        self, tmp_path, clock, monkeypatch
    ):
        service = _service(tmp_path, clock)
        monkeypatch.setattr(
            ResultCache,
            "_write_entry",
            lambda self, job, payload: (_ for _ in ()).throw(
                OSError(28, "No space left on device")
            ),
        )
        ticket = service.submit_sweep(jobs=_jobs(3), tenant="acme")
        service.drain()
        # Results still come back -- durability, not liveness, was lost.
        assert service.results(ticket) == run_jobs(_jobs(3), workers=1)
        durability = service.durability()
        assert durability["mode"] == "degraded"
        assert durability["cache_put_errors"] == 3
        assert service.health()["caches"]["acme"]["put_errors"] == 3
        service.close()

    def test_corrupt_wal_record_is_quarantined_and_skipped(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        good = service.submit_sweep(jobs=_jobs(2), tenant="acme")
        del service
        wal_path = tmp_path / "state" / "service.wal"
        lines = wal_path.read_text().splitlines(keepends=True)
        corrupt = encode_record(
            {"type": "accept", "ticket": "s-0666", "tenant": "evil"}
        ).replace("evil", "EVIL")
        wal_path.write_text(lines[0] + corrupt + "".join(lines[1:]))

        revived = _service(tmp_path, clock)
        durability = revived.durability()
        assert durability["quarantined"] == 1
        assert (wal_path.with_suffix(".quarantine")).exists()
        # The good ticket still recovers; the damaged record is skipped.
        revived.drain()
        assert revived.results(good) == run_jobs(_jobs(2), workers=1)
        revived.close()

    def test_torn_wal_tail_is_dropped(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        ticket = service.submit_sweep(jobs=_jobs(2), tenant="acme")
        del service
        wal_path = tmp_path / "state" / "service.wal"
        with open(wal_path, "a", encoding="utf-8") as handle:
            handle.write('{"rec": {"v": 1, "type": "acc')  # mid-append crash
        revived = _service(tmp_path, clock)
        assert revived.status(ticket)["state"] == "queued"
        revived.drain()
        revived.results(ticket)
        revived.close()

    def test_wal_compacts_on_recovery(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        for n in range(3):
            ticket = service.submit_sweep(jobs=_jobs(1, offset=n), tenant="acme")
            service.drain()
            service.results(ticket)
        del service
        revived = _service(tmp_path, clock)
        # 3 x (accept + finish): dispatch records are coalesced away.
        wal_path = tmp_path / "state" / "service.wal"
        assert len(wal_path.read_text().splitlines()) == 6
        assert revived.durability()["replayed"] == 9
        revived.close()
