"""Tests for fault-injection campaigns and the outcome taxonomy
(repro.faults.campaign, repro.common.stats.TaxonomyCounter,
repro.analysis.fault_matrix)."""

from dataclasses import asdict

import pytest

from repro.analysis.fault_matrix import (
    format_fault_matrix,
    run_fault_matrix,
    single_bit_summary,
)
from repro.common.stats import TaxonomyCounter
from repro.faults.campaign import (
    OUTCOME_CLASSES,
    SINGLE_BIT_PTE_SCENARIOS,
    CampaignResult,
    run_campaign,
    run_campaign_cell,
)
from repro.faults.inject import ALL_SCENARIOS
from repro.harness.parallel import ResultCache

SEED = 11
TRIALS = 40


# -- taxonomy counter ---------------------------------------------------------


class TestTaxonomyCounter:
    def test_counts_in_declared_order_with_zeros(self):
        counter = TaxonomyCounter("outcomes", OUTCOME_CLASSES)
        counter.increment("sim_crash")
        counter.increment("detected_corrected", 3)
        assert counter.as_dict() == {
            "detected_corrected": 3,
            "detected_uncorrectable": 0,
            "recovered_reconstructed": 0,
            "recovered_retired": 0,
            "panic": 0,
            "silent_corruption": 0,
            "masked_benign": 0,
            "sim_crash": 1,
        }
        assert counter.total() == 4

    def test_unknown_class_rejected(self):
        counter = TaxonomyCounter("outcomes", ("a", "b"))
        with pytest.raises(KeyError):
            counter.increment("c")
        with pytest.raises(KeyError):
            counter.get("c")

    def test_duplicate_classes_rejected(self):
        with pytest.raises(ValueError):
            TaxonomyCounter("outcomes", ("a", "a"))


# -- per-scenario guarantees --------------------------------------------------


class TestCellGuarantees:
    def test_pte_single_all_corrected(self):
        cell = run_campaign_cell("pte_single", TRIALS, SEED)
        assert cell.trials == TRIALS
        assert cell.outcome("detected_corrected") == TRIALS
        assert cell.outcome("silent_corruption") == 0
        assert cell.protected_tampered == TRIALS
        assert cell.corrected_fraction == 1.0
        # flip-and-check is the step that wins on single data-bit faults
        assert cell.winning_steps.get("flip_and_check", 0) > 0

    def test_mac_single_all_corrected_by_soft_match(self):
        cell = run_campaign_cell("mac_single", TRIALS, SEED)
        assert cell.outcome("detected_corrected") == TRIALS
        assert cell.outcome("silent_corruption") == 0
        assert cell.corrected_fraction == 1.0
        assert cell.winning_steps.get("soft_match", 0) == TRIALS
        # MAC flips never touch protected content
        assert cell.protected_tampered == 0

    def test_pte_double_never_silent_sometimes_uncorrectable(self):
        cell = run_campaign_cell("pte_double", TRIALS, SEED)
        assert cell.outcome("silent_corruption") == 0
        assert cell.outcome("sim_crash") == 0
        assert cell.outcome("detected_uncorrectable") >= 1
        assert cell.detected == TRIALS

    def test_global_bit_and_field_scenarios_fully_corrected(self):
        for scenario in ("global_bit", "pfn_only", "flags_only"):
            cell = run_campaign_cell(scenario, 20, SEED)
            assert cell.outcome("detected_corrected") == 20, scenario
            assert cell.corrected_fraction == 1.0, scenario

    def test_data_single_is_silent_by_design(self):
        cell = run_campaign_cell("data_single", TRIALS, SEED)
        assert cell.target == "data"
        assert cell.outcome("silent_corruption") == TRIALS
        assert cell.detected == 0

    def test_cell_is_deterministic(self):
        first = run_campaign_cell("uniform", 30, SEED)
        second = run_campaign_cell("uniform", 30, SEED)
        assert asdict(first) == asdict(second)

    def test_validate_runs_sweeps(self):
        cell = run_campaign_cell("pte_single", 33, SEED, validate=True)
        assert cell.invariant_sweeps >= 2  # every 32 trials + final

    def test_trial_restore_leaves_memory_pristine(self):
        """Back-to-back cells over the same seed see identical faults —
        which only holds if every trial restores the pre-fault line."""
        first = run_campaign_cell("burst", 20, SEED)
        second = run_campaign_cell("burst", 20, SEED)
        assert first.outcomes == second.outcomes
        assert first.bits_injected == second.bits_injected


# -- full campaign ------------------------------------------------------------


class TestCampaign:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(scenarios=["pte_single", "bogus"], trials_per_cell=1)

    def test_small_campaign_histogram_and_cache_replay(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenarios = ["pte_single", "data_single"]
        first = run_campaign(
            scenarios=scenarios, trials_per_cell=10, seed=SEED,
            workers=1, cache=cache,
        )
        replay = run_campaign(
            scenarios=scenarios, trials_per_cell=10, seed=SEED,
            workers=1, cache=ResultCache(tmp_path),
        )
        assert [asdict(c) for c in first.cells] == [asdict(c) for c in replay.cells]
        assert first.histogram()["detected_corrected"] == 10
        assert first.histogram()["silent_corruption"] == 10
        assert first.total_trials == 20

    def test_acceptance_scale_campaign(self):
        """The acceptance-criteria campaign: >= 1000 faults across
        PTE/MAC/data targets, deterministic histogram, zero silent
        corruption for single-bit PTE faults, Fig-9-consistent
        correction for uniform flips."""
        result = run_campaign(trials_per_cell=120, seed=SEED, workers=1)
        assert result.total_trials == 120 * len(ALL_SCENARIOS) >= 1000
        assert {cell.scenario for cell in result.cells} == set(ALL_SCENARIOS)
        assert result.histogram()["sim_crash"] == 0

        summary = single_bit_summary(result)
        assert summary["trials"] == 120 * len(SINGLE_BIT_PTE_SCENARIOS)
        assert summary["silent"] == 0  # detection guarantee (Sec IV-F)
        assert summary["corrected_fraction"] == 1.0  # correction (Sec VI)

        uniform = result.cell("uniform")
        # Fig 9 at p_flip = 1/256: most erroneous lines carry a single
        # flipped bit, so best-effort correction recovers the majority.
        assert uniform.corrected_fraction >= 0.5
        assert uniform.outcome("silent_corruption") == 0

        rerun = run_campaign(trials_per_cell=120, seed=SEED, workers=1)
        assert rerun.histogram() == result.histogram()


# -- report -------------------------------------------------------------------


class TestFaultMatrixReport:
    def test_report_contains_matrix_and_guarantee_lines(self):
        result = run_fault_matrix(
            scenarios=["pte_single", "uniform", "data_single"],
            trials_per_cell=12, seed=SEED, workers=1, validate=True,
        )
        report = format_fault_matrix(result)
        assert "Fault-injection campaign" in report
        assert "pte_single" in report and "uniform" in report
        assert "detection guarantee: 0" in report
        assert "0 silent corruptions" in report
        assert "protection boundary" in report
        assert "invariant sweeps, all clean" in report

    def test_report_is_deterministic(self):
        kwargs = dict(scenarios=["pte_single", "mac_single"],
                      trials_per_cell=8, seed=SEED, workers=1)
        assert format_fault_matrix(run_fault_matrix(**kwargs)) == \
            format_fault_matrix(run_fault_matrix(**kwargs))

    def test_histogram_class_order_is_stable(self):
        result = CampaignResult(cells=[])
        assert list(result.histogram()) == list(OUTCOME_CLASSES)
