"""Tests for the OS substrate (kernel, processes, demand paging)."""

import pytest

from repro.common.config import PAGE_BYTES, PTGuardConfig
from repro.common.errors import PageFaultError
from repro.core import pattern
from repro.harness.system import build_system
from repro.mmu.pte import X86PageTableEntry
from repro.mmu.walker import PTEIntegrityException


@pytest.fixture()
def system():
    return build_system()


@pytest.fixture()
def guarded():
    return build_system(ptguard=PTGuardConfig())


class TestProcessLifecycle:
    def test_create_assigns_unique_pids(self, system):
        a = system.kernel.create_process("a")
        b = system.kernel.create_process("b")
        assert a.pid != b.pid

    def test_root_table_is_zeroed_through_controller(self, guarded):
        """Table pages must cross the guard so their lines carry MACs —
        a walk of an empty line then passes its integrity check."""
        process = guarded.kernel.create_process("p")
        root_line = guarded.memory.read_line(process.page_table.root_pfn * PAGE_BYTES)
        assert root_line != bytes(64)  # MAC embedded, not raw zeros
        assert pattern.strip_mac(root_line) == bytes(64)

    def test_destroy_frees_everything(self, system):
        kernel = system.kernel
        before = kernel.allocator.free_pages_count
        process = kernel.create_process("p")
        vma = kernel.mmap(process, 16, populate=True)
        assert kernel.allocator.free_pages_count < before
        kernel.destroy_process(process)
        assert kernel.allocator.free_pages_count == before


class TestDemandPaging:
    def test_fault_allocates_and_maps(self, system):
        kernel = system.kernel
        process = kernel.create_process("p")
        vma = kernel.mmap(process, 4)
        assert process.resident_pages == 0
        pfn = kernel.handle_page_fault(process, vma.start)
        assert process.resident_pages == 1
        assert process.page_table.translate(vma.start) == pfn * PAGE_BYTES

    def test_fault_idempotent(self, system):
        kernel = system.kernel
        process = kernel.create_process("p")
        vma = kernel.mmap(process, 4)
        first = kernel.handle_page_fault(process, vma.start)
        second = kernel.handle_page_fault(process, vma.start)
        assert first == second

    def test_segv_outside_vma(self, system):
        kernel = system.kernel
        process = kernel.create_process("p")
        with pytest.raises(PageFaultError):
            kernel.handle_page_fault(process, 0xDEAD000)

    def test_access_virtual_faults_transparently(self, system):
        kernel = system.kernel
        process = kernel.create_process("p")
        vma = kernel.mmap(process, 4)
        physical = kernel.access_virtual(process, vma.start + 5)
        assert physical % PAGE_BYTES == 5

    def test_vma_overlap_rejected(self, system):
        kernel = system.kernel
        process = kernel.create_process("p")
        kernel.mmap(process, 4, at=0x10000)
        with pytest.raises(ValueError):
            kernel.mmap(process, 4, at=0x12000)


class TestVirtualIO:
    def test_write_read_roundtrip(self, system):
        kernel = system.kernel
        process = kernel.create_process("p")
        vma = kernel.mmap(process, 4)
        payload = bytes(range(256)) * 20  # crosses pages
        kernel.write_virtual(process, vma.start + 100, payload)
        assert kernel.read_virtual(process, vma.start + 100, len(payload)) == payload

    def test_isolation_between_processes(self, system):
        kernel = system.kernel
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        vma_a = kernel.mmap(a, 2)
        vma_b = kernel.mmap(b, 2)
        kernel.write_virtual(a, vma_a.start, b"AAAA")
        kernel.write_virtual(b, vma_b.start, b"BBBB")
        assert kernel.read_virtual(a, vma_a.start, 4) == b"AAAA"
        assert kernel.read_virtual(b, vma_b.start, 4) == b"BBBB"
        assert a.frames[vma_a.start >> 12] != b.frames[vma_b.start >> 12]


class TestGuardedKernel:
    def test_walks_work_end_to_end(self, guarded):
        kernel = guarded.kernel
        process = kernel.create_process("p")
        vma = kernel.mmap(process, 64, populate=True)
        for page in range(0, 64, 7):
            kernel.access_virtual(process, vma.start + page * PAGE_BYTES)
        assert not kernel.incidents

    def test_integrity_incident_recorded(self, guarded):
        kernel = guarded.kernel
        process = kernel.create_process("p")
        vma = kernel.mmap(process, 4, populate=True)
        entry_address = process.page_table.leaf_entry_address(vma.start)
        guarded.memory.flip_bit(entry_address & ~63, 13)
        kernel.walker.flush_all()
        with pytest.raises(PTEIntegrityException):
            kernel.access_virtual(process, vma.start)
        assert len(kernel.incidents) == 1
        assert kernel.incidents[0].pid == process.pid

    def test_os_reads_of_ptes_are_mac_free(self, guarded):
        """Sec IV-C: the OS reads PTEs through the data path and sees
        clean values (MAC stripped)."""
        kernel = guarded.kernel
        process = kernel.create_process("p")
        vma = kernel.mmap(process, 1, populate=True)
        entry_address = process.page_table.leaf_entry_address(vma.start)
        pte = kernel.port.read_u64(entry_address)
        decoded = X86PageTableEntry(pte)
        assert decoded.pfn == process.frames[vma.start >> 12]
        assert (pte >> 40) & 0xFFF == 0  # no MAC residue


class TestSpuriousFaults:
    def test_flipped_present_bit_remapped_on_baseline(self, system):
        """A 1->0 flip in a present bit makes a resident page fault; the
        OS re-establishes the mapping instead of looping forever."""
        kernel = system.kernel
        process = kernel.create_process("p")
        vma = kernel.mmap(process, 2, populate=True)
        entry_address = process.page_table.leaf_entry_address(vma.start)
        system.memory.flip_bit(entry_address & ~63,
                               (entry_address % 64) * 8 + 0)  # present bit
        kernel.walker.flush_all()
        physical = kernel.access_virtual(process, vma.start)
        assert physical // 4096 == process.frames[vma.start >> 12]

    def test_unresolvable_fault_raises(self, system):
        """If re-mapping cannot help (no frame recorded), the fault
        surfaces instead of spinning."""
        kernel = system.kernel
        process = kernel.create_process("p")
        with pytest.raises(PageFaultError):
            kernel.access_virtual(process, 0xDEAD000)


class TestRekey:
    def test_rekey_preserves_all_data_and_translations(self, guarded):
        kernel = guarded.kernel
        process = kernel.create_process("p")
        vma = kernel.mmap(process, 8, populate=True)
        kernel.write_virtual(process, vma.start, b"persistent")
        translation_before = process.page_table.translate(vma.start)
        rewritten = kernel.rekey_memory()
        assert rewritten > 0
        assert guarded.guard.epoch == 1
        kernel.walker.flush_all()
        assert process.page_table.translate(vma.start) == translation_before
        assert kernel.read_virtual(process, vma.start, 10) == b"persistent"
        # walks verify under the new key
        kernel.access_virtual(process, vma.start)
        assert not kernel.incidents
