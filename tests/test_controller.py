"""Tests for the memory controller (PT-Guard's seam)."""

import pytest

from repro.common.config import DRAMConfig, PTGuardConfig
from repro.core import pattern
from repro.core.guard import PTGuard
from repro.dram.device import DRAMDevice
from repro.mem.controller import MemoryController, MemoryRequest
from repro.mem.memory import PhysicalMemory
from repro.mmu.pte import make_x86_pte


def make_controller(guard_config=None):
    config = DRAMConfig()
    memory = PhysicalMemory(config.size_bytes)
    device = DRAMDevice(config, memory)
    guard = PTGuard(guard_config, mac_algorithm="blake2") if guard_config else None
    return MemoryController(device, guard), memory


def pte_line():
    return pattern.join_ptes([make_x86_pte(0x2E5F3 + i) for i in range(8)])


class TestRequestValidation:
    def test_alignment(self):
        with pytest.raises(ValueError):
            MemoryRequest(address=8, is_write=False)

    def test_write_needs_payload(self):
        with pytest.raises(ValueError):
            MemoryRequest(address=0, is_write=True)
        with pytest.raises(ValueError):
            MemoryRequest(address=0, is_write=True, data=bytes(10))


class TestBaseline:
    def test_write_then_read(self):
        controller, _ = make_controller()
        controller.write_line(0x1000, bytes(range(64)))
        response = controller.read_line(0x1000)
        assert response.data == bytes(range(64))
        assert response.latency_cycles > 0

    def test_baseline_stores_raw_pte(self):
        controller, memory = make_controller()
        controller.write_line(0x1000, pte_line())
        assert memory.read_line(0x1000) == pte_line()


class TestGuarded:
    def test_pte_stored_with_mac(self):
        controller, memory = make_controller(PTGuardConfig())
        controller.write_line(0x1000, pte_line())
        stored = memory.read_line(0x1000)
        assert stored != pte_line()
        assert pattern.strip_mac(stored) == pte_line()

    def test_pte_read_strips_and_adds_latency(self):
        guard_config = PTGuardConfig(mac_latency_cycles=10)
        controller, _ = make_controller(guard_config)
        controller.write_line(0x1000, pte_line())
        baseline, _ = make_controller()
        baseline.write_line(0x1000, pte_line())
        guarded = controller.read_line(0x1000, is_pte=True)
        plain = baseline.read_line(0x1000)
        assert guarded.data == pte_line()
        # same DRAM state sequence => exactly +10 cycles of MAC latency
        assert guarded.latency_cycles == plain.latency_cycles + 10

    def test_tampered_pte_sets_check_failed(self):
        controller, memory = make_controller(PTGuardConfig())
        controller.write_line(0x1000, pte_line())
        memory.flip_bit(0x1000, 13)
        response = controller.read_line(0x1000, is_pte=True)
        assert response.pte_check_failed
        assert controller.stats.get("pte_check_failures") == 1

    def test_correction_writes_back(self):
        controller, memory = make_controller(PTGuardConfig(correction_enabled=True))
        controller.write_line(0x1000, pte_line())
        memory.flip_bit(0x1000, 13)
        response = controller.read_line(0x1000, is_pte=True)
        assert response.corrected and not response.pte_check_failed
        assert controller.stats.get("correction_writebacks") == 1
        # the scrub repaired DRAM: a further read verifies cleanly
        again = controller.read_line(0x1000, is_pte=True)
        assert not again.corrected and again.data == pte_line()


class TestCoherence:
    def test_listeners_notified_on_write(self):
        dropped = []

        class FakeCache:
            def discard(self, address):
                dropped.append(address)

        controller, _ = make_controller()
        cache = FakeCache()
        controller.attach_coherent_cache(cache)
        controller.write_line(0x2000, bytes(64))
        assert dropped == [0x2000]

    def test_origin_excluded(self):
        dropped = []

        class FakeCache:
            def discard(self, address):
                dropped.append(address)

        controller, _ = make_controller()
        cache = FakeCache()
        controller.attach_coherent_cache(cache)
        controller.access(
            MemoryRequest(address=0x2000, is_write=True, data=bytes(64), origin=cache)
        )
        assert dropped == []


class TestCTBOverflowPath:
    def test_overflow_flags_rekey_required(self):
        config = PTGuardConfig(ctb_entries=1)
        controller, _ = make_controller(config)
        guard = controller.ptguard

        def colliding(address, seed):
            import random

            base = bytearray(random.Random(seed).randbytes(64))
            for index in range(8):
                base[index * 8 + 5] = 0
                base[index * 8 + 6] &= 0xF0
            tag = guard.engine.compute(bytes(base), address)
            line = pattern.embed_mac(bytes(base), tag)
            assert not pattern.matches_pattern(line)
            return line

        first = controller.write_line(0x0, colliding(0x0, 1))
        assert not first.rekey_required
        second = controller.write_line(0x40, colliding(0x40, 2))
        assert second.rekey_required
        assert controller.stats.get("ctb_overflows") == 1
