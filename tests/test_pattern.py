"""Tests for the PTE-line layout and pattern matching (Table IV)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import pattern
from repro.mmu.pte import make_x86_pte

lines = st.binary(min_size=64, max_size=64)
macs = st.integers(0, 2**96 - 1)
identifiers = st.integers(0, 2**56 - 1)


def pte_line(base_pfn=0x4000, present=8):
    return pattern.join_ptes(
        [make_x86_pte(base_pfn + i) if i < present else 0 for i in range(8)]
    )


class TestSplitJoin:
    @given(lines)
    def test_roundtrip(self, line):
        assert pattern.join_ptes(pattern.split_ptes(line)) == line

    def test_little_endian_layout(self):
        line = (1).to_bytes(8, "little") + bytes(56)
        assert pattern.split_ptes(line)[0] == 1

    def test_length_enforced(self):
        with pytest.raises(ValueError):
            pattern.split_ptes(bytes(63))
        with pytest.raises(ValueError):
            pattern.join_ptes([0] * 7)


class TestProtectedBits:
    def test_table4_m40(self):
        """Table IV at M = 40: flags sans accessed + OS bits + 28-bit PFN
        + prot keys/NX = 44 protected bits per PTE."""
        positions = pattern.protected_bit_positions(40)
        assert len(positions) == 44
        assert 5 not in positions  # accessed bit excluded
        assert all(b in positions for b in (0, 1, 2, 8, 9, 11, 12, 39, 59, 63))
        assert all(b not in positions for b in range(40, 59))

    def test_flip_and_check_budget(self):
        # (28 + 16) x 8 = 352 single-bit guesses (Sec VI-D step 2).
        assert len(pattern.protected_bit_positions(40)) * 8 == 352

    def test_smaller_machine(self):
        positions = pattern.protected_bit_positions(32)
        assert 31 in positions and 32 not in positions

    @given(lines)
    def test_mask_idempotent(self, line):
        masked = pattern.mask_unprotected(line, 40)
        assert pattern.mask_unprotected(masked, 40) == masked

    @given(lines)
    def test_mask_clears_metadata_fields(self, line):
        masked = pattern.mask_unprotected(line, 40)
        assert pattern.extract_mac(masked) == 0
        assert pattern.extract_identifier(masked) == 0


class TestPatternMatch:
    def test_zero_line_matches(self):
        assert pattern.matches_pattern(bytes(64))
        assert pattern.matches_pattern(bytes(64), extended=True)

    def test_real_pte_line_matches(self):
        assert pattern.matches_pattern(pte_line(), extended=True)

    def test_mac_field_bit_breaks_match(self):
        line = pattern.embed_mac(bytes(64), 1)
        assert not pattern.matches_pattern(line)

    def test_identifier_field_only_checked_when_extended(self):
        line = pattern.embed_identifier(bytes(64), 1)
        assert pattern.matches_pattern(line)  # 96-bit pattern ignores 58:52
        assert not pattern.matches_pattern(line, extended=True)

    def test_random_data_rarely_matches(self):
        import random

        rng = random.Random(0)
        matches = sum(
            pattern.matches_pattern(rng.randbytes(64)) for _ in range(200)
        )
        assert matches == 0  # 96 random bits all-zero: p = 2^-96


class TestMACEmbedding:
    @given(macs)
    def test_extract_inverts_embed(self, tag):
        assert pattern.extract_mac(pattern.embed_mac(bytes(64), tag)) == tag

    @given(lines, macs)
    def test_embed_preserves_other_bits(self, line, tag):
        stored = pattern.embed_mac(line, tag)
        assert pattern.strip_mac(stored) == pattern.strip_mac(line)

    def test_strip_restores_pte_line(self):
        line = pte_line()
        stored = pattern.embed_mac(line, 0xDEADBEEF_CAFEBABE_12345678)
        assert pattern.strip_mac(stored) == line

    def test_oversized_mac_rejected(self):
        with pytest.raises(ValueError):
            pattern.embed_mac(bytes(64), 1 << 96)

    def test_mac_lands_in_bits_51_40(self):
        stored = pattern.embed_mac(bytes(64), 0xFFF)  # 12 bits -> PTE 0
        ptes = pattern.split_ptes(stored)
        assert ptes[0] == 0xFFF << 40
        assert all(p == 0 for p in ptes[1:])


class TestIdentifierEmbedding:
    @given(identifiers)
    def test_extract_inverts_embed(self, ident):
        line = pattern.embed_identifier(bytes(64), ident)
        assert pattern.extract_identifier(line) == ident

    @given(lines, identifiers)
    def test_identifier_independent_of_mac(self, line, ident):
        stored = pattern.embed_identifier(line, ident)
        assert pattern.extract_mac(stored) == pattern.extract_mac(line)

    def test_identifier_lands_in_bits_58_52(self):
        stored = pattern.embed_identifier(bytes(64), 0x7F)  # 7 bits -> PTE 0
        assert pattern.split_ptes(stored)[0] == 0x7F << 52

    def test_oversized_identifier_rejected(self):
        with pytest.raises(ValueError):
            pattern.embed_identifier(bytes(64), 1 << 56)


class TestStripMetadata:
    @given(lines, macs, identifiers)
    def test_full_roundtrip(self, line, tag, ident):
        clean = pattern.strip_metadata(line)
        stored = pattern.embed_identifier(pattern.embed_mac(clean, tag), ident)
        assert pattern.strip_metadata(stored) == clean


class TestZeroData:
    def test_zero_line(self):
        assert pattern.is_zero_data(bytes(64))

    def test_metadata_only_is_zero_data(self):
        stored = pattern.embed_identifier(pattern.embed_mac(bytes(64), 123), 45)
        assert pattern.is_zero_data(stored)

    def test_data_bit_is_not(self):
        assert not pattern.is_zero_data((1).to_bytes(8, "little") + bytes(56))


class TestPFNHelpers:
    @given(st.integers(0, 2**28 - 1))
    def test_pfn_roundtrip(self, pfn):
        pte = pattern.with_pfn(0x67, pfn, 40)
        assert pattern.pfn_of(pte, 40) == pfn
        assert pte & 0xFFF == 0x67  # flags untouched

    def test_bounds_check_detects_mac_residue(self):
        """Sec IV-E: a MAC left in bits 51:40 makes the architectural PFN
        exceed installed memory — the OS-visible signal."""
        pte_with_mac = pattern.embed_mac(pte_line(), (1 << 96) - 1)
        first = pattern.split_ptes(pte_with_mac)[0]
        assert pattern.pfn_exceeds_bound(first, 40)
        assert not pattern.pfn_exceeds_bound(make_x86_pte(0x4000), 40)
