"""Tests for the in-order core timing model (kept small but meaningful)."""

import pytest

from repro.common.config import PTGuardConfig, optimized_ptguard_config
from repro.cpu.workloads import get_workload
from repro.harness.system import build_system


def run(workload, guard_config=None, mem_ops=8000, warmup=12000, seed=1):
    system = build_system(ptguard=guard_config, mac_algorithm="pseudo", seed=seed)
    process, trace = system.workload_process(get_workload(workload), seed=seed)
    core = system.new_core(process)
    core.prefault(trace)
    return core.run(trace, mem_ops=mem_ops, warmup_ops=warmup)


@pytest.fixture(scope="module")
def xalanc_base():
    return run("xalancbmk")


@pytest.fixture(scope="module")
def xalanc_guarded():
    return run("xalancbmk", PTGuardConfig())


class TestBaselinePlausibility:
    def test_ipc_below_one(self, xalanc_base):
        assert 0.01 < xalanc_base.ipc < 1.0

    def test_mpki_in_target_zone(self, xalanc_base):
        target = get_workload("xalancbmk").target_mpki
        assert 0.5 * target <= xalanc_base.llc_mpki <= 1.8 * target

    def test_low_mpki_workload_much_faster(self, xalanc_base):
        quiet = run("povray")
        assert quiet.ipc > 1.5 * xalanc_base.ipc
        assert quiet.llc_mpki < 0.2 * xalanc_base.llc_mpki

    def test_tlb_misses_drive_walks(self, xalanc_base):
        assert xalanc_base.walks > 0
        assert xalanc_base.walks <= xalanc_base.tlb_misses + 1

    def test_some_walks_reach_dram(self, xalanc_base):
        assert xalanc_base.walk_dram_reads > 0
        # but most are filtered by the MMU cache + data caches
        assert xalanc_base.walk_dram_reads < xalanc_base.dram_reads


class TestGuardTiming:
    def test_guard_slows_memory_bound_workload(self, xalanc_base, xalanc_guarded):
        assert xalanc_guarded.cycles > xalanc_base.cycles
        slowdown = xalanc_base.ipc / xalanc_guarded.ipc - 1
        assert 0.005 < slowdown < 0.10  # Fig 6 regime (paper: 3.6%)

    def test_same_work_performed(self, xalanc_base, xalanc_guarded):
        assert xalanc_guarded.instructions == xalanc_base.instructions
        assert xalanc_guarded.mem_ops == xalanc_base.mem_ops

    def test_optimized_cheaper_than_baseline_guard(self, xalanc_base, xalanc_guarded):
        optimized = run("xalancbmk", optimized_ptguard_config())
        slow_base = xalanc_base.ipc / xalanc_guarded.ipc - 1
        slow_opt = xalanc_base.ipc / optimized.ipc - 1
        assert slow_opt < slow_base
        assert slow_opt < 0.02  # paper: 0.4% worst case

    def test_mac_latency_scales_slowdown(self, xalanc_base):
        slow = run("xalancbmk", PTGuardConfig(mac_latency_cycles=20))
        fast = run("xalancbmk", PTGuardConfig(mac_latency_cycles=5))
        assert (xalanc_base.ipc / slow.ipc) > (xalanc_base.ipc / fast.ipc)

    def test_quiet_workload_barely_affected(self):
        base = run("povray")
        guarded = run("povray", PTGuardConfig())
        slowdown = base.ipc / guarded.ipc - 1
        assert slowdown < 0.01  # paper: <1% below 5 MPKI
