"""Tests for the MAC engine (soft match) and the correction engine."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import pattern
from repro.core.correction import FLAG_BITS, CorrectionEngine
from repro.core.engine import MACEngine
from repro.crypto.mac import Blake2LineMAC
from repro.mmu.pte import make_x86_pte

ADDRESS = 0x40000


@pytest.fixture()
def engine():
    return MACEngine(Blake2LineMAC(bytes(range(32))), max_phys_bits=40, soft_match_k=4)


def stored_pte_line(engine, base_pfn=0x2E5F3, present=8, contiguous=True):
    """A realistic protected PTE line. The default PFN is bit-dense so
    present entries stay above the almost-zero threshold (real PFNs on a
    loaded machine are similarly dense)."""
    ptes = []
    for i in range(8):
        if i < present:
            pfn = base_pfn + i if contiguous else base_pfn + 37 * i + 11
            ptes.append(make_x86_pte(pfn, user=True))
        else:
            ptes.append(0)
    line = pattern.join_ptes(ptes)
    tag = engine.compute(line, ADDRESS)
    return pattern.embed_mac(line, tag), line


class TestMACEngine:
    def test_mac_ignores_metadata_fields(self, engine):
        line = pattern.join_ptes([make_x86_pte(i) for i in range(8)])
        with_mac = pattern.embed_mac(line, 0xABC)
        assert engine.compute(line, ADDRESS) == engine.compute(with_mac, ADDRESS)

    def test_mac_ignores_accessed_bit(self, engine):
        line = pattern.join_ptes([make_x86_pte(i) for i in range(8)])
        accessed = bytearray(line)
        accessed[0] |= 1 << 5
        assert engine.compute(line, ADDRESS) == engine.compute(bytes(accessed), ADDRESS)

    def test_mac_covers_pfn_and_flags(self, engine):
        line = pattern.join_ptes([make_x86_pte(i) for i in range(8)])
        for bit in (0, 2, 12, 39, 59, 63):
            tampered = bytearray(line)
            tampered[bit // 8] ^= 1 << (bit % 8)
            assert engine.compute(line, ADDRESS) != engine.compute(bytes(tampered), ADDRESS)

    def test_exact_verify(self, engine):
        line = bytes(64)
        tag = engine.compute(line, ADDRESS)
        assert engine.verify(line, ADDRESS, tag).ok
        assert not engine.verify(line, ADDRESS, tag ^ 1).ok

    def test_soft_verify_tolerates_k_bits(self, engine):
        line = bytes(64)
        tag = engine.compute(line, ADDRESS)
        damaged = tag ^ 0b1111  # 4 flipped MAC bits
        result = engine.verify(line, ADDRESS, damaged, soft=True)
        assert result.ok and result.soft and result.distance == 4

    def test_soft_verify_rejects_k_plus_one(self, engine):
        line = bytes(64)
        tag = engine.compute(line, ADDRESS)
        damaged = tag ^ 0b11111  # 5 flips > k=4
        assert not engine.verify(line, ADDRESS, damaged, soft=True).ok

    def test_zero_mac_is_address_free(self, engine):
        assert engine.compute_zero_mac() == engine.line_mac.compute(bytes(64), 0)


class TestCorrectionBudget:
    def test_gmax_372(self, engine):
        assert CorrectionEngine(engine).max_guesses == 372


class TestCorrectionStrategies:
    def _correct(self, engine, faulty):
        return CorrectionEngine(engine).correct(faulty, ADDRESS)

    def test_clean_line_soft_matches_immediately(self, engine):
        stored, _ = stored_pte_line(engine)
        result = self._correct(engine, stored)
        assert result.winning_step == "soft_match"
        assert result.guesses_used == 1

    def test_mac_fault_soft_match(self, engine):
        stored, logical = stored_pte_line(engine)
        faulty = bytearray(stored)
        faulty[5] ^= 0x01  # bit 40 of PTE 0: MAC field
        result = self._correct(engine, bytes(faulty))
        assert result.winning_step == "soft_match"
        assert pattern.strip_mac(result.corrected_line) == logical

    def test_single_data_flip(self, engine):
        stored, logical = stored_pte_line(engine)
        faulty = bytearray(stored)
        faulty[2] ^= 0x10  # PFN bit of PTE 0
        result = self._correct(engine, bytes(faulty))
        assert result.winning_step == "flip_and_check"
        assert pattern.strip_mac(result.corrected_line) == logical

    def test_zero_pte_reset(self, engine):
        stored, logical = stored_pte_line(engine, present=3)
        faulty = bytearray(stored)
        faulty[7 * 8 + 1] ^= 0x04  # flip inside a zero PTE
        faulty[6 * 8 + 2] ^= 0x08  # and another zero PTE
        result = self._correct(engine, bytes(faulty))
        assert result.corrected_line is not None
        assert pattern.strip_mac(result.corrected_line) == logical
        assert result.winning_step in ("reset_zero_ptes", "flag_majority",
                                       "pfn_contiguity", "flags_plus_contiguity")

    def test_flag_majority(self, engine):
        stored, logical = stored_pte_line(engine)
        faulty = bytearray(stored)
        faulty[0 * 8] ^= 0x02  # writable flag, PTE 0
        faulty[3 * 8] ^= 0x04  # user flag, PTE 3
        result = self._correct(engine, bytes(faulty))
        assert result.corrected_line is not None
        assert pattern.strip_mac(result.corrected_line) == logical
        assert result.winning_step == "flag_majority"

    def test_pfn_contiguity(self, engine):
        stored, logical = stored_pte_line(engine)
        faulty = bytearray(stored)
        faulty[1 * 8 + 1] ^= 0x20  # PFN low bit, PTE 1
        faulty[5 * 8 + 1] ^= 0x40  # PFN low bit, PTE 5
        result = self._correct(engine, bytes(faulty))
        assert result.corrected_line is not None
        assert pattern.strip_mac(result.corrected_line) == logical
        assert result.winning_step in ("pfn_contiguity", "flags_plus_contiguity")

    def test_combined_flags_and_pfn(self, engine):
        stored, logical = stored_pte_line(engine)
        faulty = bytearray(stored)
        faulty[2 * 8] ^= 0x02  # flag PTE 2
        faulty[6 * 8 + 1] ^= 0x20  # PFN low bit PTE 6
        result = self._correct(engine, bytes(faulty))
        assert result.corrected_line is not None
        assert pattern.strip_mac(result.corrected_line) == logical

    def test_noncontiguous_multibit_uncorrectable(self, engine):
        """Random PFNs + multi-PTE PFN damage: no strategy applies."""
        stored, _ = stored_pte_line(engine, contiguous=False)
        faulty = bytearray(stored)
        faulty[1 * 8 + 2] ^= 0x10
        faulty[5 * 8 + 3] ^= 0x40
        result = self._correct(engine, bytes(faulty))
        assert result.corrected_line is None
        assert result.guesses_used == CorrectionEngine(engine).max_guesses

    def test_identifier_restoration(self, engine):
        correction = CorrectionEngine(engine, identifier=0x55AA55AA55AA55 >> 2)
        ident = correction.identifier
        line = pattern.join_ptes([make_x86_pte(0x100 + i) for i in range(8)])
        tag = engine.compute(line, ADDRESS)
        stored = pattern.embed_identifier(pattern.embed_mac(line, tag), ident)
        faulty = bytearray(stored)
        faulty[6] ^= 0x20  # bit 53: identifier field
        result = correction.correct(bytes(faulty), ADDRESS)
        assert result.corrected_line is not None
        assert pattern.extract_identifier(result.corrected_line) == ident


class TestNoMiscorrection:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_accepted_guess_is_always_the_truth(self, seed):
        """Property: whenever correction accepts a guess, the protected
        content equals the pre-fault original (MAC collisions are the only
        escape and are ~2^-66)."""
        rng = random.Random(seed)
        engine = MACEngine(
            Blake2LineMAC(bytes(range(32))), max_phys_bits=40, soft_match_k=4
        )
        base = 0x2E000 + rng.randrange(1 << 12) | 0x551
        stored, logical = stored_pte_line(engine, base_pfn=base,
                                          present=rng.randint(1, 8))
        faulty = bytearray(stored)
        for _ in range(rng.randint(1, 5)):
            faulty[rng.randrange(64)] ^= 1 << rng.randrange(8)
        result = CorrectionEngine(engine).correct(bytes(faulty), ADDRESS)
        if result.corrected_line is not None:
            assert pattern.mask_unprotected(result.corrected_line, 40) == \
                pattern.mask_unprotected(logical, 40)


class TestFlagBits:
    def test_sixteen_protected_flag_bits(self):
        assert len(FLAG_BITS) == 16
        assert 5 not in FLAG_BITS
        assert 63 in FLAG_BITS
