"""Tests for the TLB and the MMU (page-walk) cache."""

import pytest

from repro.mmu.mmu_cache import MMUCache
from repro.mmu.tlb import TLB, TLBEntry


def entry(pfn=1):
    return TLBEntry(pfn=pfn, writable=True, user_accessible=True, no_execute=False)


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(4)
        assert tlb.lookup(1, 100) is None
        tlb.insert(1, 100, entry(7))
        assert tlb.lookup(1, 100).pfn == 7

    def test_asid_isolation(self):
        tlb = TLB(4)
        tlb.insert(1, 100, entry(7))
        assert tlb.lookup(2, 100) is None

    def test_lru_eviction(self):
        tlb = TLB(2)
        tlb.insert(1, 100, entry(1))
        tlb.insert(1, 101, entry(2))
        tlb.lookup(1, 100)  # refresh 100
        tlb.insert(1, 102, entry(3))
        assert tlb.lookup(1, 101) is None
        assert tlb.lookup(1, 100) is not None

    def test_capacity_64_default(self):
        tlb = TLB()
        for vpn in range(65):
            tlb.insert(1, vpn, entry(vpn))
        assert len(tlb) == 64
        assert tlb.lookup(1, 0) is None  # the oldest fell out

    def test_invalidate_page(self):
        tlb = TLB(4)
        tlb.insert(1, 100, entry())
        tlb.invalidate_page(1, 100)
        assert tlb.lookup(1, 100) is None

    def test_invalidate_asid(self):
        tlb = TLB(8)
        tlb.insert(1, 100, entry())
        tlb.insert(2, 100, entry())
        tlb.invalidate_asid(1)
        assert tlb.lookup(1, 100) is None
        assert tlb.lookup(2, 100) is not None

    def test_flush(self):
        tlb = TLB(4)
        tlb.insert(1, 100, entry())
        tlb.flush()
        assert len(tlb) == 0

    def test_hit_rate(self):
        tlb = TLB(4)
        tlb.insert(1, 100, entry())
        tlb.lookup(1, 100)
        tlb.lookup(1, 200)
        assert tlb.hit_rate == pytest.approx(0.5)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TLB(0)


class TestMMUCache:
    def test_miss_then_hit(self):
        cache = MMUCache()
        assert cache.lookup(0x1000) is None
        cache.insert(0x1000, 0xDEAD)
        assert cache.lookup(0x1000) == 0xDEAD

    def test_distinct_entries(self):
        cache = MMUCache()
        cache.insert(0x1000, 1)
        cache.insert(0x1008, 2)
        assert cache.lookup(0x1000) == 1
        assert cache.lookup(0x1008) == 2

    def test_associativity_eviction(self):
        cache = MMUCache(size_bytes=4 * 8 * 2, associativity=2)  # 4 sets, 2 ways
        stride = 4 * 8  # same set, different tags
        cache.insert(0, 1)
        cache.insert(stride, 2)
        cache.insert(2 * stride, 3)  # evicts LRU (tag 0)
        assert cache.lookup(0) is None
        assert cache.lookup(stride) == 2

    def test_invalidate(self):
        cache = MMUCache()
        cache.insert(0x1000, 1)
        cache.invalidate(0x1000)
        assert cache.lookup(0x1000) is None

    def test_flush(self):
        cache = MMUCache()
        cache.insert(0x1000, 1)
        cache.flush()
        assert cache.lookup(0x1000) is None

    def test_paper_geometry(self):
        """Table III: 8 KB, 4-way."""
        cache = MMUCache(8 * 1024, 4)
        assert cache.num_sets == 256

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            MMUCache(size_bytes=100, associativity=3)
