"""Tests for the Collision Tracking Buffer (Sec IV-D, VII-B)."""

import pytest

from repro.common.errors import CollisionBufferOverflow
from repro.core.ctb import CollisionTrackingBuffer


class TestBasics:
    def test_insert_and_lookup(self):
        ctb = CollisionTrackingBuffer()
        ctb.insert(0x1000)
        assert ctb.contains(0x1000)
        assert not ctb.contains(0x2000)

    def test_duplicate_insert_is_idempotent(self):
        ctb = CollisionTrackingBuffer()
        ctb.insert(0x1000)
        ctb.insert(0x1000)
        assert len(ctb) == 1

    def test_remove(self):
        ctb = CollisionTrackingBuffer()
        ctb.insert(0x1000)
        ctb.remove(0x1000)
        assert not ctb.contains(0x1000)

    def test_remove_absent_is_noop(self):
        CollisionTrackingBuffer().remove(0x1000)

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            CollisionTrackingBuffer(0)


class TestOverflow:
    def test_overflow_at_capacity(self):
        ctb = CollisionTrackingBuffer(capacity=4)
        for i in range(4):
            ctb.insert(0x1000 + 64 * i)
        with pytest.raises(CollisionBufferOverflow):
            ctb.insert(0x9000)
        assert ctb.stats.get("overflows") == 1

    def test_clear_resets(self):
        ctb = CollisionTrackingBuffer(capacity=2)
        ctb.insert(1 * 64)
        ctb.insert(2 * 64)
        ctb.clear()
        assert len(ctb) == 0
        ctb.insert(3 * 64)  # usable again after re-key


class TestPaperBudget:
    def test_sram_cost_is_20_bytes(self):
        """4 entries x 5-byte line address = the paper's 20-byte CTB."""
        assert CollisionTrackingBuffer(4).sram_bytes == 20

    def test_stats_track_lookups(self):
        ctb = CollisionTrackingBuffer()
        ctb.insert(64)
        ctb.contains(64)
        ctb.contains(128)
        assert ctb.stats.get("lookups") == 2
        assert ctb.stats.get("hits") == 1
