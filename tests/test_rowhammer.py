"""Tests for the Rowhammer fault model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.rowhammer import (
    RowhammerModel,
    RowhammerProfile,
    inject_uniform_flips,
)


def neighbor_fn(row_key, distance):
    channel, rank, bank, row = row_key
    out = []
    for delta in (-distance, distance):
        if 0 <= row + delta < 1024:
            out.append((channel, rank, bank, row + delta))
    return out


def make_model(threshold=100, flip_probability=0.05, seed=1):
    profile = RowhammerProfile("test", threshold, flip_probability)
    return RowhammerModel(profile, lines_per_row=4, neighbor_fn=neighbor_fn, seed=seed)


VICTIM = (0, 0, 0, 100)
AGGRESSOR_LEFT = (0, 0, 0, 99)
AGGRESSOR_RIGHT = (0, 0, 0, 101)


class TestProfiles:
    def test_paper_thresholds(self):
        assert RowhammerProfile.ddr3_2014().threshold == 139_000
        assert RowhammerProfile.ddr4_2020().threshold == 10_000
        assert RowhammerProfile.lpddr4_2020().threshold == 4_800

    def test_threshold_ratio_27x(self):
        """Sec II-A: vulnerability worsened ~27x in 7 years."""
        ratio = RowhammerProfile.ddr3_2014().threshold / RowhammerProfile.lpddr4_2020().threshold
        assert 25 <= ratio <= 30

    def test_flip_probabilities(self):
        assert RowhammerProfile.lpddr4_2020().flip_probability == 0.01

    def test_activation_budget_order_of_magnitude(self):
        budget = RowhammerProfile.lpddr4_2020().activation_budget()
        assert 1_000_000 <= budget <= 2_000_000  # ~1.37M per 64 ms


class TestDisturbance:
    def test_activation_deposits_into_neighbors(self):
        model = make_model()
        model.record_activation(AGGRESSOR_LEFT)
        assert model.disturbance(VICTIM) == 1.0
        assert model.disturbance((0, 0, 0, 98)) == 1.0

    def test_distance_two_weak(self):
        model = make_model()
        model.record_activation((0, 0, 0, 102))
        assert model.disturbance(VICTIM) == pytest.approx(1 / 2000)

    def test_double_sided_adds(self):
        model = make_model(threshold=10)
        for _ in range(5):
            model.record_activation(AGGRESSOR_LEFT)
            model.record_activation(AGGRESSOR_RIGHT)
        assert model.over_threshold(VICTIM)

    def test_refresh_restores(self):
        model = make_model(threshold=10)
        for _ in range(20):
            model.record_activation(AGGRESSOR_LEFT)
        model.record_refresh(VICTIM)
        assert model.disturbance(VICTIM) == 0.0

    def test_mitigation_refresh_hammers_neighbors(self):
        """The Half-Double primitive: refreshing a row disturbs *its*
        neighbours at full distance-1 strength."""
        model = make_model()
        model.record_mitigation_refresh(AGGRESSOR_LEFT)
        assert model.disturbance(AGGRESSOR_LEFT) == 0.0  # restored
        assert model.disturbance(VICTIM) == 1.0  # hammered

    def test_window_elapsed_clears_all(self):
        model = make_model(threshold=5)
        for _ in range(10):
            model.record_activation(AGGRESSOR_LEFT)
        model.refresh_window_elapsed()
        assert model.disturbance(VICTIM) == 0.0
        assert model.hammered_rows() == []


class TestCellPhysics:
    def test_determinism(self):
        a, b = make_model(seed=9), make_model(seed=9)
        for line in range(4):
            for bit in range(512):
                assert a.cell_is_vulnerable(VICTIM, line, bit) == b.cell_is_vulnerable(
                    VICTIM, line, bit
                )

    def test_seed_changes_cells(self):
        a, b = make_model(seed=1), make_model(seed=2)
        cells_a = [
            (line, bit)
            for line in range(4)
            for bit in range(512)
            if a.cell_is_vulnerable(VICTIM, line, bit)
        ]
        cells_b = [
            (line, bit)
            for line in range(4)
            for bit in range(512)
            if b.cell_is_vulnerable(VICTIM, line, bit)
        ]
        assert cells_a != cells_b

    def test_vulnerable_fraction_matches_probability(self):
        model = make_model(flip_probability=0.05)
        total = sum(
            model.cell_is_vulnerable((0, 0, 0, row), line, bit)
            for row in range(20)
            for line in range(4)
            for bit in range(512)
        )
        fraction = total / (20 * 4 * 512)
        assert 0.035 <= fraction <= 0.065


class TestFlipComputation:
    def _flips(self, model, stored_bit):
        return model.compute_flips(
            VICTIM,
            line_address_fn=lambda row, idx: idx * 64,
            read_bit=lambda addr, bit: stored_bit,
        )

    def test_no_flips_below_threshold(self):
        model = make_model(threshold=100)
        model.record_activation(AGGRESSOR_LEFT)
        assert self._flips(model, 1) == []

    def test_flips_over_threshold_respect_polarity(self):
        model = make_model(threshold=2, flip_probability=0.05)
        for _ in range(3):
            model.record_activation(AGGRESSOR_LEFT)
        ones_flips = self._flips(model, 1)
        assert ones_flips, "true cells should flip stored 1s"
        assert all(f.direction == "1->0" for f in ones_flips)

    def test_anti_cells_flip_zeros(self):
        model = make_model(threshold=2, flip_probability=0.05)
        for _ in range(3):
            model.record_activation(AGGRESSOR_LEFT)
        zero_flips = self._flips(model, 0)
        assert zero_flips
        assert all(f.direction == "0->1" for f in zero_flips)

    def test_cells_flip_once_per_window(self):
        model = make_model(threshold=2, flip_probability=0.05)
        for _ in range(3):
            model.record_activation(AGGRESSOR_LEFT)
        first = self._flips(model, 1)
        assert first
        again = self._flips(model, 1)
        assert again == []  # processed marker + flip history

    def test_refresh_rearms(self):
        model = make_model(threshold=2, flip_probability=0.05)
        for _ in range(3):
            model.record_activation(AGGRESSOR_LEFT)
        first = self._flips(model, 1)
        model.record_refresh(VICTIM)
        model.reset_flip_history()
        for _ in range(3):
            model.record_activation(AGGRESSOR_LEFT)
        second = self._flips(model, 1)
        assert {(f.line_address, f.bit_offset) for f in second} == {
            (f.line_address, f.bit_offset) for f in first
        }


class TestUniformInjection:
    def test_zero_probability(self):
        rng = random.Random(0)
        line, flips = inject_uniform_flips(bytes(64), 0.0, rng)
        assert line == bytes(64) and flips == []

    def test_certain_probability(self):
        rng = random.Random(0)
        line, flips = inject_uniform_flips(bytes(64), 1.0, rng)
        assert line == b"\xff" * 64 and len(flips) == 512

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_reported_flips_match_damage(self, seed):
        rng = random.Random(seed)
        original = bytes(range(64))
        faulty, flips = inject_uniform_flips(original, 0.02, rng)
        diff = int.from_bytes(original, "little") ^ int.from_bytes(faulty, "little")
        assert diff.bit_count() == len(flips)
        for bit in flips:
            assert (diff >> bit) & 1

    def test_rate_statistics(self):
        rng = random.Random(7)
        total = 0
        for _ in range(100):
            _, flips = inject_uniform_flips(bytes(64), 1 / 128, rng)
            total += len(flips)
        mean = total / 100
        assert 2.5 <= mean <= 5.5  # E = 512/128 = 4
