"""Conformance suite for the pluggable executor backends.

Every :data:`repro.harness.parallel.BACKENDS` entry must be
indistinguishable through the ``run_jobs`` contract: byte-identical
reports, the same write-through cache behaviour, the same typed error
taxonomy, and the same recovery story under deterministic chaos. The
suite is parametrized over the registry, so adding a backend without
meeting the contract fails here, not in production sweeps.

Also home to the contextvars regression: two concurrent ``run_jobs``
calls in different threads must keep their policies and stats isolated
(the bug class that motivated moving fabric state off module globals).
"""

from __future__ import annotations

import threading

import pytest

from repro.common.errors import (
    JobExecutionError,
    RetryBudgetExceededError,
    SimJobError,
    UnknownJobKindError,
)
from repro.harness.chaos import ChaosPolicy
from repro.harness.experiments import experiment_figure6
from repro.harness.parallel import (
    BACKENDS,
    ExecutionPolicy,
    ResultCache,
    SimJob,
    execution_policy,
    get_backend,
    last_run_stats,
    register_job_kind,
    run_jobs,
)

QUARTER = 0.25
FIG_WORKLOADS = ["povray", "xz"]
ALL_BACKENDS = sorted(BACKENDS)
# Backends with a carrier that chaos can kill; inprocess has none.
CARRIER_BACKENDS = [name for name in ALL_BACKENDS if name != "inprocess"]


def _conf_double(params):
    return {"doubled": params["value"] * 2}


def _conf_explode(params):
    raise ValueError(f"job asked to explode on {params['value']}")


register_job_kind("conf_double", _conf_double)
register_job_kind("conf_explode", _conf_explode)


def _jobs(count, offset=0):
    return [
        SimJob(kind="conf_double", params={"value": index + offset})
        for index in range(count)
    ]


@pytest.fixture(scope="module")
def fig6_serial_reference():
    return experiment_figure6(scale=QUARTER, workloads=FIG_WORKLOADS, workers=1)


class TestBackendRegistry:
    def test_registry_names_match_instances(self):
        for name in ALL_BACKENDS:
            assert get_backend(name).name == name

    def test_unknown_backend_is_typed(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown executor backend"):
            get_backend("quantum")


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestReportConformance:
    def test_figure6_bytes_identical(self, backend, fig6_serial_reference, tmp_path):
        cache = ResultCache(tmp_path)
        with execution_policy(ExecutionPolicy(backend=backend)):
            cold = experiment_figure6(
                scale=QUARTER, workloads=FIG_WORKLOADS, workers=2, cache=cache
            )
            warm = experiment_figure6(
                scale=QUARTER, workloads=FIG_WORKLOADS, workers=2, cache=cache
            )
        assert cold == fig6_serial_reference
        assert warm == fig6_serial_reference
        assert cache.hits > 0, "warm pass must be served from the cache"

    def test_results_in_job_order_with_cache_hits(self, backend, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = _jobs(5)
        cold = run_jobs(jobs, workers=2, cache=cache, backend=backend)
        assert cold == [{"doubled": 2 * index} for index in range(5)]
        assert last_run_stats().fresh == 5
        warm = run_jobs(jobs, workers=2, cache=cache, backend=backend)
        assert warm == cold
        assert last_run_stats().cached == 5 and last_run_stats().fresh == 0


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestErrorTaxonomyConformance:
    def test_job_exception_surfaces_as_permanent_execution_error(self, backend):
        jobs = [SimJob(kind="conf_explode", params={"value": 3})]
        with pytest.raises(JobExecutionError, match="asked to explode") as info:
            run_jobs(jobs + _jobs(2), workers=2, backend=backend)
        assert info.value.transient is False

    def test_unknown_kind_is_typed(self, backend):
        jobs = [SimJob(kind="conf_missing_kind", params={})] + _jobs(2)
        with pytest.raises(SimJobError) as info:
            run_jobs(jobs, workers=2, backend=backend)
        assert isinstance(
            info.value, (UnknownJobKindError, JobExecutionError)
        )
        assert info.value.transient is False


class TestChaosConformance:
    @pytest.mark.parametrize("backend", CARRIER_BACKENDS)
    def test_kill_every_first_attempt_still_correct(self, backend):
        policy = ExecutionPolicy(
            retries=2,
            backoff_base_s=0.0,
            chaos=ChaosPolicy(seed=11, kill=1.0),
        )
        results = run_jobs(_jobs(6), workers=2, policy=policy, backend=backend)
        stats = last_run_stats()
        assert results == [{"doubled": 2 * index} for index in range(6)]
        assert stats.crashes == 6, "every job's first attempt must be killed"
        assert stats.retries == 6

    @pytest.mark.parametrize("backend", CARRIER_BACKENDS)
    def test_kill_with_zero_retry_budget_is_typed_exhaustion(self, backend):
        policy = ExecutionPolicy(
            retries=0,
            backoff_base_s=0.0,
            fallback_serial=False,
            chaos=ChaosPolicy(seed=11, kill=1.0),
        )
        with pytest.raises(RetryBudgetExceededError) as info:
            run_jobs(_jobs(4), workers=2, policy=policy, backend=backend)
        assert getattr(info.value.__cause__, "transient", False) is True

    def test_inprocess_has_no_carrier_to_kill(self):
        policy = ExecutionPolicy(
            retries=0, backoff_base_s=0.0, chaos=ChaosPolicy(seed=11, kill=1.0)
        )
        results = run_jobs(_jobs(4), workers=1, policy=policy, backend="inprocess")
        assert results == [{"doubled": 2 * index} for index in range(4)]
        assert last_run_stats().crashes == 0

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_corrupted_cache_recovers_on_every_backend(self, backend, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = _jobs(4, offset=50)
        policy = ExecutionPolicy(chaos=ChaosPolicy(seed=5, corrupt=1.0))
        first = run_jobs(jobs, workers=2, cache=cache, policy=policy, backend=backend)

        warm_cache = ResultCache(tmp_path)
        warm = run_jobs(jobs, workers=2, cache=warm_cache, backend=backend)
        stats = last_run_stats()
        assert warm == first
        assert stats.quarantined == 4, "every corrupted entry must quarantine"
        assert stats.fresh == 4


ADAPTIVE_STRATEGIES = ("escalate", "rekey_burst")
ADAPTIVE_WINDOWS = 6
ADAPTIVE_SEED = 17


def _adaptive_jobs():
    from repro.analysis.siege_eval import adaptive_siege_cell_job
    from repro.recovery.policy import RECOVERY_POLICIES

    recovery = RECOVERY_POLICIES["full"].as_params()
    return [
        adaptive_siege_cell_job(
            strategy, ADAPTIVE_WINDOWS, ADAPTIVE_SEED, "povray", False, recovery
        )
        for strategy in ADAPTIVE_STRATEGIES
    ]


@pytest.fixture(scope="module")
def adaptive_serial_reference():
    """The in-process ground truth the backends must reproduce exactly."""
    from repro.analysis.siege_eval import run_adaptive_siege_cell
    from repro.recovery.policy import RECOVERY_POLICIES

    recovery = RECOVERY_POLICIES["full"].as_params()
    return [
        run_adaptive_siege_cell(
            strategy, ADAPTIVE_WINDOWS, ADAPTIVE_SEED, recovery=recovery
        )
        for strategy in ADAPTIVE_STRATEGIES
    ]


class TestObservationConformance:
    """The closed loop's telemetry is part of the backend contract: the
    per-window ObservationChannel trace and every strategy switch must be
    identical across serial, process-pool and threaded execution, and
    across a ``--resume`` replay — else adaptive sieges would not be
    content-addressable."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_telemetry_and_switch_sequences_identical(
        self, backend, tmp_path, adaptive_serial_reference
    ):
        from dataclasses import asdict

        cache = ResultCache(tmp_path)
        cells = run_jobs(
            _adaptive_jobs(), workers=2, cache=cache, backend=backend
        )
        for cell, reference in zip(cells, adaptive_serial_reference):
            assert cell.observations == reference.observations
            assert cell.strategy_switches == reference.strategy_switches
            assert asdict(cell) == asdict(reference)
        # The switching controller must actually have decided something,
        # or the equality above is vacuous.
        assert any(cell.strategy_switches for cell in cells)

    # abort_after is raised by the carrier supervisor; inprocess has none.
    @pytest.mark.parametrize("backend", CARRIER_BACKENDS)
    def test_resume_replay_preserves_telemetry(
        self, backend, tmp_path, adaptive_serial_reference
    ):
        from dataclasses import asdict

        cache = ResultCache(tmp_path)
        policy = ExecutionPolicy(
            retries=2,
            backoff_base_s=0.0,
            chaos=ChaosPolicy(seed=1, abort_after=1),
        )
        with pytest.raises(KeyboardInterrupt):
            run_jobs(
                _adaptive_jobs(), workers=2, cache=cache,
                policy=policy, backend=backend,
            )
        resumed = run_jobs(
            _adaptive_jobs(), workers=2, cache=ResultCache(tmp_path),
            backend=backend,
        )
        stats = last_run_stats()
        assert stats.cached >= 1, "the interrupted cell must replay from cache"
        for cell, reference in zip(resumed, adaptive_serial_reference):
            assert cell.observations == reference.observations
            assert cell.strategy_switches == reference.strategy_switches
            assert asdict(cell) == asdict(reference)


class TestContextIsolation:
    """Two interleaved ``run_jobs`` calls must not share policy or stats."""

    def test_threaded_runs_keep_policies_and_stats_isolated(self):
        observed = {}
        barrier = threading.Barrier(2)

        def sweep(name, seed, count):
            # Distinct chaos policies: each run must see only its own.
            policy = ExecutionPolicy(
                retries=2,
                backoff_base_s=0.0,
                chaos=ChaosPolicy(seed=seed, kill=1.0),
            )
            barrier.wait()
            results = run_jobs(
                _jobs(count, offset=seed * 100),
                workers=2,
                policy=policy,
                backend="threaded",
            )
            stats = last_run_stats()
            observed[name] = (results, stats.jobs, stats.crashes)

        threads = [
            threading.Thread(target=sweep, args=("a", 1, 5)),
            threading.Thread(target=sweep, args=("b", 2, 3)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        results_a, jobs_a, crashes_a = observed["a"]
        results_b, jobs_b, crashes_b = observed["b"]
        assert results_a == [{"doubled": 2 * (100 + i)} for i in range(5)]
        assert results_b == [{"doubled": 2 * (200 + i)} for i in range(3)]
        assert (jobs_a, crashes_a) == (5, 5)
        assert (jobs_b, crashes_b) == (3, 3)

    def test_context_manager_policy_does_not_leak_across_threads(self):
        seen = {}

        def probe():
            # A fresh thread starts from defaults, not the main thread's
            # override — context-local, not global.
            from repro.harness.parallel import get_execution_policy

            seen["thread"] = get_execution_policy().retries

        with execution_policy(ExecutionPolicy(retries=9)):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
            from repro.harness.parallel import get_execution_policy

            seen["main"] = get_execution_policy().retries
        assert seen["main"] == 9
        assert seen["thread"] != 9
