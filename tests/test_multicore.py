"""Tests for the 4-core model (Sec VII-C)."""

import pytest

from repro.common.config import PTGuardConfig
from repro.cpu.multicore import (
    MulticoreSimulator,
    SharedChannel,
    make_random_mix,
    make_same_mix,
    run_multicore_experiment,
)
from repro.cpu.workloads import get_workload


class TestSharedChannel:
    def test_first_access_free(self):
        channel = SharedChannel(burst_cycles=10)
        assert channel.occupy(100) == 0

    def test_back_to_back_queues(self):
        channel = SharedChannel(burst_cycles=10)
        channel.occupy(100)
        assert channel.occupy(100) == 10
        assert channel.occupy(100) == 20

    def test_gap_drains_queue(self):
        channel = SharedChannel(burst_cycles=10)
        channel.occupy(100)
        assert channel.occupy(500) == 0

    def test_total_wait_accumulates(self):
        channel = SharedChannel(burst_cycles=10)
        channel.occupy(0)
        channel.occupy(0)
        channel.occupy(0)
        assert channel.total_wait == 10 + 20


class TestMixes:
    def test_same_mix(self):
        assert make_same_mix("lbm") == ["lbm"] * 4

    def test_random_mix_deterministic(self):
        assert make_random_mix(7) == make_random_mix(7)
        assert len(make_random_mix(7)) == 4


class TestSimulation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_multicore_experiment(
            make_same_mix("xz"), None, mem_ops_per_core=1200, warmup_ops=600
        )

    def test_four_cores_ran(self, result):
        assert len(result.per_core) == 4
        assert all(r.mem_ops == 1200 for r in result.per_core)

    def test_system_ipc_positive(self, result):
        assert 0.0 < result.system_ipc < 4.0

    def test_guard_costs_something_on_memory_bound_mix(self):
        base = run_multicore_experiment(
            make_same_mix("lbm"), None, mem_ops_per_core=1200, warmup_ops=600
        )
        guarded = run_multicore_experiment(
            make_same_mix("lbm"),
            PTGuardConfig(),
            mem_ops_per_core=1200,
            warmup_ops=600,
        )
        slowdown = base.system_ipc / guarded.system_ipc - 1
        assert 0.0 <= slowdown < 0.10

    def test_private_caches_shared_llc(self):
        simulator = MulticoreSimulator(
            [get_workload("xz")] * 4, None, seed=3
        )
        hierarchies = {id(core.hierarchy) for core in simulator.cores}
        assert len(hierarchies) == 4  # private L1/L2 slices
        llcs = {id(core.hierarchy.controller.llc) for core in simulator.cores}
        assert len(llcs) == 1  # one shared L3
