"""Tests for the worst-case availability frontier.

The frontier is the PR's headline artifact: every recovery policy in
the search grid against every adaptive strategy, scored by minimum
availability (the adversary picks the strategy). These tests pin the
grid contents, the adversarial ranking, the byte-determinism of the
rendered report, and the acceptance separation — a shipped preset is
BROKEN by an adaptive strategy while the hardened searched policy
SURVIVES every one.
"""

from __future__ import annotations

import pytest

from repro.analysis.frontier_eval import (
    FrontierRow,
    format_frontier_report,
    run_frontier,
)
from repro.attacks.adaptive import ALL_STRATEGIES
from repro.common.errors import ConfigurationError
from repro.harness.parallel import ResultCache, last_run_stats
from repro.recovery import (
    AVAILABILITY_TARGET,
    POLICY_GRIDS,
    hardened_policy,
    policy_grid,
)

WINDOWS = 12
SEED = 17


@pytest.fixture(scope="module")
def quick_frontier(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("frontier-cache"))
    return run_frontier(
        windows=WINDOWS, seed=SEED, policies="quick", workers=2, cache=cache
    )


class TestPolicyGrids:
    def test_grids_are_named_and_non_empty(self):
        assert set(POLICY_GRIDS) == {"default", "quick"}
        for name in POLICY_GRIDS:
            grid = policy_grid(name)
            assert grid, f"grid {name!r} must not be empty"
            names = [policy.name for policy in grid]
            assert len(names) == len(set(names)), "policy names must be unique"

    def test_default_grid_spans_presets_and_search_points(self):
        names = {policy.name for policy in policy_grid("default")}
        assert {"none", "reconstruct", "retire", "full", "hardened"} <= names

    def test_hardened_policy_shape(self):
        policy = hardened_policy()
        assert policy.reconstruct_enabled
        assert policy.retire_enabled
        assert not policy.rekey_enabled, (
            "the searched policy gates the attacker-purchasable rekey off"
        )

    def test_unknown_grid_is_typed(self):
        with pytest.raises(ConfigurationError, match="unknown policy grid"):
            policy_grid("exhaustive")


class TestFrontierRanking:
    def test_one_cell_per_policy_strategy_pair(self, quick_frontier):
        rows, cells = quick_frontier
        grid = policy_grid("quick")
        assert len(cells) == len(grid) * len(ALL_STRATEGIES)
        for row in rows:
            assert sorted(row.availability) == sorted(ALL_STRATEGIES)

    def test_rows_ranked_by_worst_case(self, quick_frontier):
        rows, _ = quick_frontier
        keys = [(-row.min_availability, row.policy) for row in rows]
        assert keys == sorted(keys)
        for row in rows:
            assert row.min_availability == min(row.availability.values())
            assert row.availability[row.broken_by] == row.min_availability

    def test_worst_case_attribution_sums(self, quick_frontier):
        rows, cells = quick_frontier
        by_key = {(c.recovery_policy, c.strategy): c for c in cells}
        for row in rows:
            worst = by_key[(row.policy, row.broken_by)]
            assert row.attribution == worst.downtime_attribution
            assert sum(row.attribution.values()) == worst.downtime_cycles

    def test_survives_tracks_target(self):
        assert FrontierRow(
            policy="p", min_availability=AVAILABILITY_TARGET
        ).survives
        assert not FrontierRow(
            policy="p", min_availability=AVAILABILITY_TARGET - 1e-9
        ).survives


class TestFrontierReport:
    def test_report_is_byte_deterministic(self, quick_frontier, tmp_path):
        rows, cells = quick_frontier
        reference = format_frontier_report(rows, cells)
        cache = ResultCache(tmp_path)
        for _ in range(2):
            again = run_frontier(
                windows=WINDOWS, seed=SEED, policies="quick",
                workers=4, cache=cache,
            )
            assert format_frontier_report(*again) == reference
        assert last_run_stats().cached == len(cells), (
            "the second evaluation must come entirely from the cache"
        )

    def test_report_names_the_weakest_policy_as_broken(self, quick_frontier):
        rows, cells = quick_frontier
        report = format_frontier_report(rows, cells)
        weakest = min(rows, key=lambda r: (r.min_availability, r.policy))
        expected = (
            f"weakest={weakest.policy} broken-by={weakest.broken_by} "
            f"min-avail={weakest.min_availability:.5f}"
        )
        assert expected in report
        ranked_line = next(
            line
            for line in report.splitlines()
            if line.split()[1:2] == [weakest.policy] and "." in line
        )
        assert "BROKEN" in ranked_line and "SURVIVES" not in ranked_line

    def test_separation_preset_broken_hardened_survives(self, quick_frontier):
        rows, _ = quick_frontier
        by_name = {row.policy: row for row in rows}
        assert not by_name["full"].survives, (
            "the shipped full preset must fall below the availability "
            "target under at least one adaptive strategy"
        )
        hardened = by_name["hardened"]
        assert hardened.survives
        assert all(
            avail >= AVAILABILITY_TARGET
            for avail in hardened.availability.values()
        ), "hardened must clear the target against every strategy"
        assert not by_name["none"].survives
