"""Tests for 4-level page tables built in simulated memory."""

import pytest

from repro.common.config import PAGE_BYTES
from repro.common.errors import TranslationError
from repro.mem.memory import PhysicalMemory
from repro.mmu.page_table import PageTable, level_index, vpn_of
from repro.mmu.pte import X86PageTableEntry


class RawPort:
    """Direct memory port (no controller) for isolated page-table tests."""

    def __init__(self, memory):
        self.memory = memory

    def read_u64(self, address):
        return self.memory.read_u64(address)

    def write_u64(self, address, value):
        self.memory.write_u64(address, value)


@pytest.fixture()
def table():
    memory = PhysicalMemory(256 * 1024 * 1024)
    next_pfn = [100]

    def allocate():
        pfn = next_pfn[0]
        next_pfn[0] += 1
        return pfn

    return PageTable(RawPort(memory), root_pfn=allocate(), allocate_table_page=allocate)


class TestIndexMath:
    def test_level_indices(self):
        va = (3 << 39) | (5 << 30) | (7 << 21) | (9 << 12) | 0x123
        assert level_index(va, 0) == 3
        assert level_index(va, 1) == 5
        assert level_index(va, 2) == 7
        assert level_index(va, 3) == 9

    def test_vpn(self):
        assert vpn_of(0x12345678) == 0x12345


class TestMapping:
    def test_map_translate(self, table):
        table.map(0x4000_0000_0000, pfn=0xABC)
        assert table.translate(0x4000_0000_0123) == 0xABC * PAGE_BYTES + 0x123

    def test_map_allocates_three_intermediate_levels(self, table):
        table.map(0x4000_0000_0000, pfn=1)
        assert len(table.table_pfns) == 4  # root + PDPT + PD + PT

    def test_same_region_reuses_tables(self, table):
        table.map(0x4000_0000_0000, pfn=1)
        table.map(0x4000_0000_1000, pfn=2)
        assert len(table.table_pfns) == 4

    def test_far_region_allocates_new_path(self, table):
        table.map(0x4000_0000_0000, pfn=1)
        table.map(0x7000_0000_0000, pfn=2)
        assert len(table.table_pfns) == 7

    def test_unmapped_raises(self, table):
        with pytest.raises(TranslationError):
            table.translate(0x1234_5000)

    def test_remap_overwrites(self, table):
        table.map(0x1000, pfn=5)
        table.map(0x1000, pfn=9)
        assert table.translate(0x1000) == 9 * PAGE_BYTES

    def test_unmap(self, table):
        table.map(0x1000, pfn=5)
        assert table.unmap(0x1000)
        with pytest.raises(TranslationError):
            table.translate(0x1000)

    def test_unmap_absent_returns_false(self, table):
        assert not table.unmap(0x9999_0000)

    def test_flags_propagate_to_leaf(self, table):
        table.map(0x1000, pfn=5, writable=False, user=True, no_execute=True,
                  protection_key=3)
        steps = table.walk_software(0x1000)
        leaf = X86PageTableEntry(steps[-1].entry)
        assert not leaf.writable and leaf.user_accessible and leaf.no_execute
        assert leaf.protection_key == 3


class TestWalks:
    def test_walk_records_four_levels(self, table):
        table.map(0x5000, pfn=7)
        steps = table.walk_software(0x5000)
        assert [s.level for s in steps] == [0, 1, 2, 3]
        assert all(X86PageTableEntry(s.entry).present for s in steps)

    def test_walk_stops_at_hole(self, table):
        assert table.walk_software(0xDEAD_0000) is None

    def test_leaf_entry_address(self, table):
        table.map(0x5000, pfn=7)
        address = table.leaf_entry_address(0x5000)
        steps = table.walk_software(0x5000)
        assert address == steps[-1].entry_address


class TestEnumeration:
    def test_iter_mappings(self, table):
        expected = {}
        for i in range(20):
            va = 0x2000_0000_0000 + i * PAGE_BYTES
            table.map(va, pfn=500 + i)
            expected[vpn_of(va)] = 500 + i
        assert dict(table.iter_mappings()) == expected

    def test_iter_leaf_tables_counts_entries(self, table):
        for i in range(3):
            table.map(0x2000_0000_0000 + i * PAGE_BYTES, pfn=500 + i)
        tables = list(table.iter_leaf_tables())
        assert len(tables) == 1
        _, entries = tables[0]
        assert len(entries) == 512
        present = [e for e in entries if X86PageTableEntry(e).present]
        assert len(present) == 3
