"""Tests for the runtime invariant checker (repro.faults.invariants).

Two properties matter: a healthy simulator passes every sweep clean, and
each registered check actually *fires* when its component's state is
corrupted directly (a validator that can't fail validates nothing).
"""

import pytest

from repro.analysis.correction_eval import workload_process, walked_pte_lines
from repro.common.config import PAGE_BYTES, PTGuardConfig
from repro.common.errors import InvariantViolation
from repro.faults.invariants import (
    InvariantChecker,
    attach_validator,
    set_validation,
    validation_enabled,
)
from repro.harness.system import build_system
from repro.mmu.tlb import TLBEntry

SEED = 7
WARM = 32


@pytest.fixture(autouse=True)
def _reset_validation_override():
    yield
    set_validation(None)


def warmed_system(mac_algorithm="blake2"):
    system = build_system(
        ptguard=PTGuardConfig(correction_enabled=True),
        mac_algorithm=mac_algorithm,
        seed=SEED,
    )
    process = workload_process(system, "povray", SEED)
    for vpn in sorted(process.frames)[:WARM]:
        system.kernel.access_virtual(process, vpn * PAGE_BYTES)
    # The kernel path above fills TLB/MMU-cache; drive a few data lines
    # through the cache hierarchy too so its consistency check has
    # resident lines to inspect.
    for vpn in sorted(process.frames)[:8]:
        system.hierarchy.read(process.frames[vpn] * PAGE_BYTES)
    return system, process


# -- enable/disable plumbing --------------------------------------------------


class TestValidationSwitch:
    def test_env_controls_default(self, monkeypatch):
        for falsy in ("", "0", "false", "No", " OFF "):
            monkeypatch.setenv("REPRO_VALIDATE", falsy)
            assert not validation_enabled()
        for truthy in ("1", "true", "yes", "on"):
            monkeypatch.setenv("REPRO_VALIDATE", truthy)
            assert validation_enabled()
        monkeypatch.delenv("REPRO_VALIDATE")
        assert not validation_enabled()

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        set_validation(False)
        assert not validation_enabled()
        set_validation(True)
        monkeypatch.setenv("REPRO_VALIDATE", "0")
        assert validation_enabled()
        set_validation(None)
        assert not validation_enabled()


# -- checker registry ---------------------------------------------------------


class TestInvariantChecker:
    def test_clean_run_counts_sweeps_and_checks(self):
        checker = InvariantChecker()
        checker.register("a", lambda: [])
        checker.register("b", lambda: [])
        assert checker.run_all() == 2
        assert checker.stats.get("sweeps") == 1
        assert checker.stats.get("checks_run") == 2
        assert checker.stats.get("violations") == 0

    def test_duplicate_name_rejected(self):
        checker = InvariantChecker()
        checker.register("a", lambda: [])
        with pytest.raises(ValueError):
            checker.register("a", lambda: [])

    def test_violations_aggregate_into_one_error(self):
        checker = InvariantChecker()
        checker.register("first", lambda: ["one"])
        checker.register("second", lambda: ["two", "three"])
        with pytest.raises(InvariantViolation) as excinfo:
            checker.run_all(context="unit test")
        message = str(excinfo.value)
        assert "3 invariant violation(s)" in message
        assert "unit test" in message
        assert "[first] one" in message and "[second] three" in message
        assert checker.stats.get("violations") == 3


# -- clean sweeps on a live system --------------------------------------------


class TestCleanSystem:
    def test_all_checks_registered_and_clean(self):
        system, _ = warmed_system()
        checker = attach_validator(system)
        assert set(checker.names) == {
            "tlb_shadow_walk",
            "mmu_cache_consistency",
            "cache_consistency",
            "mac_differential_oracle",
        }
        assert len(system.kernel.walker.tlb) > 0  # the sweep has substance
        assert checker.run_all(context="clean") == 4

    def test_sweep_is_side_effect_free(self):
        system, _ = warmed_system()
        checker = attach_validator(system)
        dram_reads = system.dram.stats.get("reads")
        tlb_hits = system.kernel.walker.tlb.stats.get("hits")
        checker.run_all()
        assert system.dram.stats.get("reads") == dram_reads
        assert system.kernel.walker.tlb.stats.get("hits") == tlb_hits

    def test_qarma_reference_agrees_with_tables(self):
        system, _ = warmed_system(mac_algorithm="qarma")
        reference = system.guard.build_reference_mac()
        fast = system.guard.engine.line_mac
        for payload in (bytes(64), bytes(range(64))):
            assert reference.compute(payload, 0x4000) == fast.compute(payload, 0x4000)
        checker = attach_validator(system)
        checker.run_all(context="qarma clean")


# -- each check must fire on direct state corruption --------------------------


class TestChecksFire:
    def test_tlb_shadow_walk_fires_on_poked_entry(self):
        system, _ = warmed_system()
        checker = attach_validator(system)
        tlb = system.kernel.walker.tlb
        key, entry = tlb.entries()[0]
        tlb._entries[key] = TLBEntry(
            pfn=entry.pfn ^ 1,
            writable=entry.writable,
            user_accessible=entry.user_accessible,
            no_execute=entry.no_execute,
            global_page=entry.global_page,
        )
        with pytest.raises(InvariantViolation, match="tlb_shadow_walk"):
            checker.run_all()

    def test_mmu_cache_fires_on_poked_value(self):
        system, _ = warmed_system()
        checker = attach_validator(system)
        cache = system.kernel.walker.mmu_cache
        entry_address, value = cache.entries()[0]
        cache.insert(entry_address, value ^ (1 << 13))
        with pytest.raises(InvariantViolation, match="mmu_cache_consistency"):
            checker.run_all()

    def test_cache_consistency_fires_on_mutated_clean_line(self):
        system, _ = warmed_system()
        checker = attach_validator(system)
        mutated = False
        for lines in system.hierarchy.l1._sets.values():
            for line in lines.values():
                if not line.dirty:
                    data = bytearray(line.data)
                    data[0] ^= 0xFF
                    line.data = bytes(data)
                    mutated = True
                    break
            if mutated:
                break
        assert mutated, "expected at least one clean L1 line after warm-up"
        with pytest.raises(InvariantViolation, match="cache_consistency"):
            checker.run_all()

    def test_differential_oracle_fires_on_lying_reference(self):
        system, _ = warmed_system()
        system.guard.engine.attach_oracle(lambda data, address: -1, sample_period=1)
        with pytest.raises(InvariantViolation, match="differential oracle"):
            system.guard.engine.compute(bytes(64), 0)

    def test_run_all_probe_fires_on_lying_reference(self):
        system, _ = warmed_system()
        checker = InvariantChecker()
        from repro.core import engine as _engine

        class Lying:
            def compute(self, data, address):
                return -1

        _engine.register_invariants(
            checker, lambda: system.guard.engine, lambda: Lying()
        )
        with pytest.raises(InvariantViolation, match="mac_differential_oracle"):
            checker.run_all()


# -- tolerance of modelled (recorded) DRAM tampering --------------------------


class TestTamperTolerance:
    def test_recorded_fault_does_not_trip_the_validator(self):
        """Caches/TLBs legitimately shield stale data over a flipped DRAM
        line — a *recorded* injection must not read as simulator SDC."""
        system, process = warmed_system()
        checker = attach_validator(system)
        target = walked_pte_lines(system, process)[0]
        system.dram.inject_fault(target, [13], scenario="tamper-tolerance")
        assert target in system.dram.tampered_lines()
        checker.run_all(context="after recorded tamper")

    def test_unrecorded_corruption_still_fires(self):
        """The same flip *without* a record (raw memory poke) is simulator
        SDC and must fire once a clean cached copy disagrees."""
        system, process = warmed_system()
        checker = attach_validator(system)
        target = walked_pte_lines(system, process)[0]
        system.memory.flip_bit(target, 13)  # bypasses the device's flip log
        assert target not in system.dram.tampered_lines()
        with pytest.raises(InvariantViolation):
            checker.run_all(context="after raw poke")
