"""Tests for workload profiles and trace generation."""

import pytest

from repro.common.config import CACHELINE_BYTES
from repro.cpu.trace import HOT_REGION_BYTES, TraceGenerator, region_pages
from repro.cpu.workloads import (
    MEMORY_INTENSIVE,
    WORKLOADS,
    WorkloadProfile,
    get_workload,
)

HOT, COLD = 0x5000_0000_0000, 0x6000_0000_0000


class TestWorkloadRoster:
    def test_25_workloads(self):
        """20 SPEC (int+fp minus gcc/blender/parest) + 5 GAP (Sec III)."""
        assert len(WORKLOADS) == 25
        suites = {w.suite for w in WORKLOADS}
        assert suites == {"spec-int", "spec-fp", "gap"}
        assert sum(1 for w in WORKLOADS if w.suite == "gap") == 5

    def test_excluded_benchmarks_absent(self):
        names = {w.name for w in WORKLOADS}
        for excluded in ("gcc", "blender", "parest"):
            assert excluded not in names

    def test_paper_headline_workloads_present(self):
        names = {w.name for w in WORKLOADS}
        for required in ("xalancbmk", "lbm", "fotonik3d", "mcf", "bc", "pr", "sssp"):
            assert required in names

    def test_memory_intensive_set(self):
        """Sec III: GAP, xalancbmk, lbm, fotonik have MPKI > 10."""
        assert "xalancbmk" in MEMORY_INTENSIVE
        assert "lbm" in MEMORY_INTENSIVE
        assert "fotonik3d" in MEMORY_INTENSIVE
        assert "povray" not in MEMORY_INTENSIVE

    def test_xalancbmk_is_worst(self):
        """Fig 6: xalancbmk has the highest MPKI (29)."""
        worst = max(WORKLOADS, key=lambda w: w.target_mpki)
        assert worst.name == "xalancbmk" and worst.target_mpki == 29.0

    def test_lookup(self):
        assert get_workload("lbm").suite == "spec-fp"
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_cold_fraction_sane(self):
        for workload in WORKLOADS:
            assert 0.0 < workload.cold_fraction < 0.2


class TestTraceGeneration:
    def test_determinism(self):
        a = TraceGenerator(get_workload("mcf"), HOT, COLD, seed=5)
        b = TraceGenerator(get_workload("mcf"), HOT, COLD, seed=5)
        for _ in range(500):
            assert a.next_record() == b.next_record()

    def test_seed_changes_stream(self):
        a = TraceGenerator(get_workload("mcf"), HOT, COLD, seed=5)
        b = TraceGenerator(get_workload("mcf"), HOT, COLD, seed=6)
        records_a = [a.next_record() for _ in range(200)]
        records_b = [b.next_record() for _ in range(200)]
        assert records_a != records_b

    def test_addresses_stay_in_regions(self):
        trace = TraceGenerator(get_workload("xalancbmk"), HOT, COLD, seed=1)
        for _ in range(2000):
            record = trace.next_record()
            va = record.virtual_address
            in_hot = HOT <= va < HOT + HOT_REGION_BYTES
            in_cold = COLD <= va < COLD + trace.regions.cold_bytes
            assert in_hot or in_cold
            assert va % CACHELINE_BYTES == 0
            assert record.instructions >= 1

    def test_cold_share_tracks_mpki(self):
        high = TraceGenerator(get_workload("xalancbmk"), HOT, COLD, seed=1)
        low = TraceGenerator(get_workload("povray"), HOT, COLD, seed=1)

        def cold_share(trace):
            cold = sum(
                1
                for _ in range(4000)
                if trace.next_record().virtual_address >= COLD
            )
            return cold / 4000

        assert cold_share(high) > 10 * cold_share(low)

    def test_write_fraction(self):
        trace = TraceGenerator(get_workload("mcf"), HOT, COLD, seed=1)
        writes = sum(trace.next_record().is_write for _ in range(4000))
        assert 0.2 <= writes / 4000 <= 0.4

    def test_region_pages_cover_both_regions(self):
        trace = TraceGenerator(get_workload("povray"), HOT, COLD, seed=1)
        pages = list(region_pages(trace.regions))
        assert HOT in pages and COLD in pages
        expected = HOT_REGION_BYTES // 4096 + trace.regions.cold_bytes // 4096
        assert len(pages) == expected
