"""Tests for the experiment harness and CLI runner."""

import json

import pytest

from repro.harness.experiments import (
    EXPERIMENTS,
    experiment_security_analysis,
    experiment_storage,
    experiment_tables_1_2,
    scaled_process_count,
)
from repro.harness.runner import main


class TestRegistry:
    def test_every_design_md_experiment_registered(self):
        """The DESIGN.md index maps to these harness entries."""
        for key in ("tables12", "fig6", "fig7", "fig8", "fig9",
                    "security", "storage", "attacks", "multicore"):
            assert key in EXPERIMENTS

    def test_entries_are_callables(self):
        assert all(callable(fn) for fn in EXPERIMENTS.values())


class TestCheapExperiments:
    def test_tables12_contains_both_layouts(self):
        report = experiment_tables_1_2()
        assert "x86_64" in report and "ARMv8" in report
        assert "pfn" in report and "protection_keys" in report
        assert "execute_never" in report

    def test_security_reports_paper_numbers(self):
        report = experiment_security_analysis()
        assert "(paper: 4)" in report
        assert "65.7" in report or "66" in report

    def test_storage_budgets(self):
        report = experiment_storage()
        assert "52" in report and "71" in report


class TestScaledProcessCount:
    """The Figure-8 population-size helper (floor, identity, scaling, cap)."""

    def test_small_scales_hit_the_floor(self):
        assert scaled_process_count(0.001) == 20
        assert scaled_process_count(0.5) == 311

    def test_unit_scale_is_the_paper_population(self):
        assert scaled_process_count(1.0) == 623

    def test_large_scales_grow_linearly(self):
        assert scaled_process_count(2.0) == 1246

    def test_clamped_at_1400(self):
        assert scaled_process_count(3.0) == 1400
        assert scaled_process_count(100.0) == 1400


class TestCLI:
    def test_runner_executes_experiment(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "SRAM" in out and "[storage:" in out

    def test_runner_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_scale_flag_parsed(self, capsys):
        assert main(["security", "--scale", "2.0"]) == 0

    def test_json_summary_written(self, capsys, tmp_path):
        path = tmp_path / "timings.json"
        assert main(["storage", "--json-summary", str(path), "--no-cache"]) == 0
        timings = json.loads(path.read_text(encoding="utf-8"))
        assert set(timings) == {"storage"}
        assert timings["storage"] >= 0.0

    def test_workers_and_cache_flags_parsed(self, capsys, tmp_path):
        # storage ignores workers/cache; the flags must still parse, and
        # --cache-dir must not create anything for a cache-free experiment.
        assert main(
            ["storage", "--workers", "2", "--cache-dir", str(tmp_path / "c")]
        ) == 0
        assert not (tmp_path / "c").exists()

class TestCLIResilienceFlags:
    def test_resume_without_cache_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["storage", "--resume", "--no-cache"])
        assert excinfo.value.code == 2
        assert "--resume needs the result cache" in capsys.readouterr().err

    def test_bad_chaos_spec_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["storage", "--chaos", "kill=2.0"])
        assert excinfo.value.code == 2
        assert "--chaos" in capsys.readouterr().err

    def test_timeout_retries_chaos_flags_reach_the_policy(self, capsys, monkeypatch):
        from repro.harness import parallel
        from repro.harness.chaos import ChaosPolicy
        from repro.harness.experiments import EXPERIMENTS

        seen = {}

        def probe(**kwargs):
            seen["policy"] = parallel.get_execution_policy()
            return "probe report"

        monkeypatch.setitem(EXPERIMENTS, "storage", probe)
        assert main(
            ["storage", "--timeout", "3.5", "--retries", "7",
             "--chaos", "seed=2,kill=0.1", "--no-cache"]
        ) == 0
        policy = seen["policy"]
        assert policy.timeout_s == 3.5 and policy.retries == 7
        assert policy.chaos == ChaosPolicy(seed=2, kill=0.1)

    def test_experiment_failure_exits_nonzero(self, capsys, monkeypatch):
        from repro.common.errors import SimulationError
        from repro.harness.experiments import EXPERIMENTS

        def broken(**kwargs):
            raise SimulationError("injected failure")

        monkeypatch.setitem(EXPERIMENTS, "storage", broken)
        assert main(["storage", "--no-cache"]) == 1
        err = capsys.readouterr().err
        assert "storage" in err and "injected failure" in err

    def test_keyboard_interrupt_exits_130_with_hint(self, capsys, monkeypatch):
        from repro.harness.experiments import EXPERIMENTS

        def interrupted(**kwargs):
            raise KeyboardInterrupt

        monkeypatch.setitem(EXPERIMENTS, "storage", interrupted)
        assert main(["storage", "--no-cache"]) == 130
        captured = capsys.readouterr()
        assert "rerun with --resume" in captured.err
        assert "Traceback" not in captured.err


class TestCLIInputValidation:
    """Unknown names fail fast: exit code 2 and a one-line message that
    lists the valid choices (argparse ``parser.error`` semantics)."""

    def _error_line(self, capsys):
        err = capsys.readouterr().err
        message = [line for line in err.splitlines() if "error:" in line]
        assert len(message) == 1, err
        return message[0]

    def test_unknown_workload_lists_valid_names(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig6", "--workloads", "povray,warez"])
        assert excinfo.value.code == 2
        line = self._error_line(capsys)
        assert "unknown workload(s) warez" in line
        assert "choose from" in line and "povray" in line

    def test_unknown_campaign_scenario_lists_valid_names(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--campaign", "pte_single,frobnicate"])
        assert excinfo.value.code == 2
        line = self._error_line(capsys)
        assert "unknown scenario(s) frobnicate" in line
        assert "choose from" in line and "pte_single" in line

    def test_unknown_recovery_policy_lists_valid_names(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--recovery-policy", "yolo"])
        assert excinfo.value.code == 2
        line = self._error_line(capsys)
        assert "unknown recovery policy" in line
        for name in ("none", "reconstruct", "retire", "full"):
            assert name in line

    def test_invalid_recovery_override_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--spare-rows", "-1"])
        assert excinfo.value.code == 2
        assert "spare_rows must be >= 0" in self._error_line(capsys)

    def test_unknown_experiment_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        assert "invalid choice" in self._error_line(capsys)


class TestSiegeCLI:
    def test_siege_experiment_runs_and_reports(self, capsys):
        assert main(["siege", "--scale", "0.2", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Siege: availability under sustained Rowhammer" in out
        assert "zero-silent-corruption guarantee holds" in out
        assert "[siege:" in out

    def test_recovery_flags_reach_the_campaign(self, capsys, monkeypatch):
        from repro.harness.experiments import EXPERIMENTS

        seen = {}

        def probe(recovery=None, **kwargs):
            seen["recovery"] = recovery
            return "probe report"

        monkeypatch.setitem(EXPERIMENTS, "campaign", probe)
        assert main(
            ["campaign", "--recovery-policy", "retire", "--spare-rows", "3",
             "--rekey-threshold", "9", "--no-cache"]
        ) == 0
        recovery = seen["recovery"]
        assert recovery["name"] == "retire"
        assert recovery["spare_rows"] == 3
        assert recovery["rekey_threshold"] == 9
