"""Tests for the siege evaluation (repro.analysis.siege_eval):
availability, survival time and recovery-latency reporting under
sustained attack pressure, plus its fabric/CLI integration."""

from dataclasses import asdict

from repro.analysis.siege_eval import (
    SIEGE_INTENSITIES,
    SiegeCell,
    format_siege_report,
    run_siege,
    run_siege_cell,
)
from repro.faults.campaign import TRIAL_WINDOW_CYCLES
from repro.harness.experiments import EXPERIMENTS
from repro.harness.parallel import ResultCache
from repro.recovery.policy import RecoveryPolicy, recovery_policy

SEED = 17
WINDOWS = 6


class TestSiegeCellAccounting:
    def test_intensity_ladder_has_three_rungs(self):
        assert len(SIEGE_INTENSITIES) >= 3
        assert SIEGE_INTENSITIES["low"] < SIEGE_INTENSITIES["medium"] \
            < SIEGE_INTENSITIES["high"]

    def test_full_policy_cell_survives_with_high_availability(self):
        cell = run_siege_cell("medium", 4, WINDOWS, SEED,
                              recovery=RecoveryPolicy().as_params())
        assert cell.injections == 4 * WINDOWS
        assert cell.exposure_cycles == WINDOWS * TRIAL_WINDOW_CYCLES
        assert cell.outcome("silent_corruption") == 0
        assert cell.survived_windows == WINDOWS  # no panic under recovery
        assert cell.survival_fraction == 1.0
        assert 0.99 <= cell.availability <= 1.0
        assert sum(cell.outcomes.values()) == cell.injections

    def test_no_policy_siege_panics_on_first_uncorrectable(self):
        cell = run_siege_cell("high", 16, WINDOWS, SEED, recovery=None)
        assert cell.recovery_policy is None
        assert cell.panics >= 1
        assert cell.survived_windows < WINDOWS
        assert cell.availability < 1.0
        assert cell.recovery_latency_cycles == []

    def test_none_policy_and_no_policy_agree(self):
        none = run_siege_cell("high", 16, WINDOWS, SEED,
                              recovery=recovery_policy("none").as_params())
        bare = run_siege_cell("high", 16, WINDOWS, SEED, recovery=None)
        assert none.panics == bare.panics
        assert none.survived_windows == bare.survived_windows
        assert none.downtime_cycles == bare.downtime_cycles

    def test_cell_is_deterministic(self):
        params = RecoveryPolicy().as_params()
        first = run_siege_cell("high", 16, WINDOWS, SEED, recovery=params)
        second = run_siege_cell("high", 16, WINDOWS, SEED, recovery=params)
        assert asdict(first) == asdict(second)

    def test_latency_percentiles_nearest_rank(self):
        cell = SiegeCell("low", 1, 1, 1, "povray",
                         recovery_latency_cycles=[30, 10, 20])
        assert cell.latency_percentile(0.0) == 10
        assert cell.latency_percentile(0.50) == 20
        assert cell.latency_percentile(1.0) == 30
        empty = SiegeCell("low", 1, 1, 1, "povray")
        assert empty.latency_percentile(0.95) == 0

    def test_validate_runs_invariant_sweeps(self):
        cell = run_siege_cell("low", 1, 3, SEED, validate=True)
        assert cell.invariant_sweeps >= 3  # one sweep per window


class TestSiegeSweep:
    def test_runs_every_intensity_and_caches(self, tmp_path):
        cells = run_siege(windows=WINDOWS, seed=SEED, workers=1,
                          cache=ResultCache(tmp_path))
        assert [cell.intensity for cell in cells] == ["low", "medium", "high"]
        assert all(cell.recovery_policy == "full" for cell in cells)
        replay = run_siege(windows=WINDOWS, seed=SEED, workers=1,
                           cache=ResultCache(tmp_path))
        assert [asdict(c) for c in cells] == [asdict(c) for c in replay]

    def test_report_renders_three_intensities_and_guarantee(self):
        cells = run_siege(windows=WINDOWS, seed=SEED, workers=1)
        report = format_siege_report(cells)
        for name in ("low", "medium", "high"):
            assert name in report
        assert "Siege: availability under sustained Rowhammer" in report
        assert "policy=full" in report
        assert "zero-silent-corruption guarantee holds" in report
        assert "survived" in report and "avail" in report and "p95" in report
        # Byte-identical across runs (the CI siege-smoke contract).
        again = format_siege_report(
            run_siege(windows=WINDOWS, seed=SEED, workers=1)
        )
        assert report == again

    def test_siege_experiment_registered(self):
        assert "siege" in EXPERIMENTS

    def test_recovery_params_are_part_of_the_cache_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        full = run_siege(windows=3, seed=SEED, workers=1, cache=cache)
        harsher = run_siege(
            windows=3, seed=SEED, workers=1, cache=cache,
            recovery=RecoveryPolicy(spare_rows=1, retire_threshold=1)
            .as_params(),
        )
        # Different policy, same everything else: must not collide.
        assert any(
            asdict(a) != asdict(b) for a, b in zip(full, harsher)
        )
