"""Tests for the analytical security model (Eq 1, Eq 2, Sec IV-G/VI-E)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import security


class TestEquation1:
    def test_exact_match_single_guess(self):
        assert security.escape_probability(96, 0, 1) == pytest.approx(2.0**-96)

    def test_paper_design_point(self):
        """n=96, k=4, Gmax=372 -> n_eff ~ 66 bits (Sec VI-E)."""
        n_eff = security.effective_mac_bits(96, 4, 372)
        assert 64.5 <= n_eff <= 67.0

    def test_security_loss(self):
        loss = security.security_loss_bits(96, 4, 372)
        assert 29.0 <= loss <= 31.5  # 96 - ~66

    def test_guesses_scale_linearly(self):
        single = security.escape_probability(96, 4, 1)
        many = security.escape_probability(96, 4, 372)
        assert many == pytest.approx(372 * single)

    @given(st.integers(0, 10), st.integers(0, 10))
    def test_monotone_in_k(self, k1, k2):
        low, high = min(k1, k2), max(k1, k2)
        assert security.escape_probability(96, low, 372) <= security.escape_probability(
            96, high, 372
        )

    def test_degenerate_k(self):
        assert security.escape_probability(8, 8, 1) == 1.0


class TestEquation2:
    def test_paper_numbers(self):
        """k=4 keeps uncorrectable MACs below 1% at p_flip=1%."""
        assert security.uncorrectable_probability(96, 4, 0.01) < 0.01
        assert security.uncorrectable_probability(96, 3, 0.01) > 0.01

    def test_zero_probability(self):
        assert security.uncorrectable_probability(96, 4, 0.0) == 0.0

    def test_certain_flips(self):
        assert security.uncorrectable_probability(96, 4, 1.0) == pytest.approx(1.0)

    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError):
            security.uncorrectable_probability(96, 4, 1.5)

    @given(st.floats(0.0001, 0.05))
    def test_is_a_probability(self, p_flip):
        value = security.uncorrectable_probability(96, 4, p_flip)
        assert 0.0 <= value <= 1.0


class TestPolicy:
    def test_chooses_k4_for_lpddr4(self):
        assert security.choose_soft_match_k(96, 0.01) == 4

    def test_chooses_smaller_k_for_ddr4(self):
        assert security.choose_soft_match_k(96, 0.001) <= 2

    def test_expected_faults(self):
        assert security.expected_mac_faults(96, 0.01) == pytest.approx(0.96)


class TestTimeEstimates:
    def test_exact_mac_exceeds_1e14_years(self):
        assert security.years_to_attack(96) > 1e14

    def test_corrected_design_exceeds_1e4_years(self):
        assert security.years_to_attack(96, 4, 372) > 1e4

    def test_natural_collision_interval(self):
        """Sec IV-D: 'once every trillion years of continuous writes'."""
        assert security.natural_collision_interval_years(96) > 1e12

    def test_ctb_fill_probability_negligible(self):
        """Sec IV-F footnote: 'approximately 2^-350' for 1 billion lines /
        4 entries. Our binomial-tail bound gives ~2^-268 — the same
        astronomically-negligible regime (the footnote's arithmetic is an
        approximation)."""
        p = security.ctb_fill_probability(96, 2**30, 4)
        assert p < 2.0**-250

    def test_infinite_when_escape_zero(self):
        assert security.years_to_attack(96, 0, 0) == math.inf


class TestSummary:
    def test_bundle_consistent(self):
        summary = security.summarize()
        assert summary.mac_bits == 96 and summary.soft_match_k == 4
        assert summary.effective_bits == pytest.approx(
            -math.log2(summary.p_escape)
        )
        assert summary.security_loss == pytest.approx(96 - summary.effective_bits)
