"""Boot-snapshot restores are indistinguishable from cold boots.

The snapshot layer (:mod:`repro.harness.snapshot`) memoizes the fully
booted machine per config digest and hands every later cell a private
deep copy. These tests pin the contract from both directions: the
*state* of a restored machine is identical to a freshly booted one
(memory bytes, kernel counters, guard identifier, MAC memo — across
every MAC backend and both storage tiers), and the *behaviour* built on
top (``run_workload``, campaign cells) is bit-identical with snapshots
on, off, memo-served or disk-served. Same derandomized-hypothesis
discipline as ``test_batch_equivalence.py``.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import PTGuardConfig, optimized_ptguard_config
from repro.cpu.workloads import get_workload
from repro.harness import snapshot
from repro.harness.system import build_system

DERANDOMIZED_SMALL = settings(derandomize=True, max_examples=6, deadline=None)

MACS = ("pseudo", "blake2", "siphash", "qarma")


@pytest.fixture(autouse=True)
def _isolated_snapshots(tmp_path, monkeypatch):
    """Fresh memo + private disk tier per test; snapshots enabled."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_BOOT_SNAPSHOT", "1")
    snapshot.reset()
    yield
    snapshot.reset()


def _boot(mac: str, seed: int = 5):
    config = replace(optimized_ptguard_config(), mac_verify_cache_entries=64)
    system = build_system(ptguard=config, mac_algorithm=mac, seed=seed)
    process, _trace = system.workload_process(get_workload("povray"), seed=seed)
    return system, process.pid


def _machine_state(system):
    """Every boot-time-observable piece of machine state, comparable."""
    engine = system.guard.engine if system.guard is not None else None
    return {
        "memory": dict(system.memory._lines),
        "kernel": system.kernel.stats.as_dict(),
        "pids": sorted(system.kernel.processes),
        "hier": system.hierarchy.stats.as_dict(),
        "identifier": system.guard.identifier if system.guard else None,
        "epoch": system.guard.epoch if system.guard else None,
        "computations": engine.computations if engine else None,
        "engine_stats": engine.stats.as_dict() if engine else None,
        "mac_memo": dict(engine._cache) if engine and engine._cache is not None else None,
    }


def _run_short(system, pid, mac: str, seed: int = 5):
    """A short timed window on the booted machine — exercises the trace
    RNG, walker, guard and hierarchy on top of (restored) boot state."""
    from repro.cpu.trace import TraceGenerator
    from repro.harness.system import COLD_BASE, HOT_BASE

    trace = TraceGenerator(
        get_workload("povray"), hot_base=HOT_BASE, cold_base=COLD_BASE, seed=seed
    )
    core = system.new_core(system.kernel.processes[pid])
    return core.run(trace, mem_ops=300, warmup_ops=50)


class TestRestoredStateIdentity:
    @DERANDOMIZED_SMALL
    @given(mac=st.sampled_from(MACS))
    def test_memo_and_disk_restores_match_fresh_boot(self, mac):
        snapshot.reset()
        fresh, fresh_pid = _boot(mac)
        params = {"mac": mac}

        miss = snapshot.cached_boot("identity", params, lambda: _boot(mac))
        memo_hit = snapshot.cached_boot("identity", params, lambda: _boot(mac))
        snapshot.reset()  # drop the memo; the next fetch reads the disk tier
        disk_hit = snapshot.cached_boot("identity", params, lambda: _boot(mac))

        reference = _machine_state(fresh)
        for label, (system, pid) in (
            ("miss", miss), ("memo", memo_hit), ("disk", disk_hit)
        ):
            assert pid == fresh_pid, label
            assert _machine_state(system) == reference, label

        # Behaviour on top of restored state is bit-identical too — this
        # drives the trace RNG stream and every counter forward.
        want = _run_short(fresh, fresh_pid, mac)
        assert _run_short(memo_hit[0], memo_hit[1], mac) == want
        assert _run_short(disk_hit[0], disk_hit[1], mac) == want

    def test_restores_are_independent(self):
        params = {"mac": "blake2"}
        first = snapshot.cached_boot("indep", params, lambda: _boot("blake2"))
        second = snapshot.cached_boot("indep", params, lambda: _boot("blake2"))
        # Mutating one restore must not leak into the memo or later copies.
        line = next(iter(second[0].memory._lines))
        second[0].memory.write_line(line, bytes(64))
        second[0].kernel.stats.increment("processes_created", 99)
        third = snapshot.cached_boot("indep", params, lambda: _boot("blake2"))
        assert _machine_state(third[0]) == _machine_state(first[0])


class TestDigestAndGating:
    def test_digest_covers_boot_inputs(self):
        base = snapshot.snapshot_digest("k", {"mac": "blake2", "seed": 5})
        assert base == snapshot.snapshot_digest("k", {"seed": 5, "mac": "blake2"})
        assert base != snapshot.snapshot_digest("k", {"mac": "blake2", "seed": 6})
        assert base != snapshot.snapshot_digest("k", {"mac": "qarma", "seed": 5})
        assert base != snapshot.snapshot_digest("other", {"mac": "blake2", "seed": 5})

    def test_disabled_env_boots_every_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_BOOT_SNAPSHOT", "0")
        calls = []
        for _ in range(2):
            snapshot.cached_boot("gate", {}, lambda: calls.append(1))
        assert len(calls) == 2

    def test_validation_boots_every_time(self):
        from repro.faults import invariants

        invariants.set_validation(True)
        try:
            calls = []
            for _ in range(2):
                snapshot.cached_boot("gate", {}, lambda: calls.append(1))
        finally:
            invariants.set_validation(None)
        assert len(calls) == 2

    def test_corrupt_disk_entry_is_discarded_and_rebooted(self):
        params = {"mac": "pseudo"}
        snapshot.cached_boot("corrupt", params, lambda: _boot("pseudo"))
        digest = snapshot.snapshot_digest("corrupt", params)
        path = snapshot.snapshot_dir() / f"{digest}.pkl"
        assert path.exists()
        path.write_bytes(b"deadbeef\n" + b"garbage")
        snapshot.reset()  # force the disk tier
        system, pid = snapshot.cached_boot("corrupt", params, lambda: _boot("pseudo"))
        assert not path.read_bytes().startswith(b"deadbeef")  # rewritten
        fresh, fresh_pid = _boot("pseudo")
        assert pid == fresh_pid
        assert _machine_state(system) == _machine_state(fresh)


class TestEndToEndEquality:
    def _sweep(self):
        from repro.analysis.perf_eval import run_workload

        profile = get_workload("xalancbmk")
        out = []
        for latency in (5, 15):
            for design in ("ptguard", "optimized"):
                config = (
                    PTGuardConfig(mac_latency_cycles=latency)
                    if design == "ptguard"
                    else optimized_ptguard_config(latency)
                )
                out.append(
                    run_workload(profile, config, mem_ops=800, warmup_ops=100, seed=1)
                )
        out.append(run_workload(profile, None, mem_ops=800, warmup_ops=100, seed=1))
        return out

    def test_run_workload_matches_cold_boot_across_latencies(self, monkeypatch):
        monkeypatch.setenv("REPRO_BOOT_SNAPSHOT", "0")
        cold = self._sweep()
        monkeypatch.setenv("REPRO_BOOT_SNAPSHOT", "1")
        snapshot.reset()
        warm = self._sweep()
        assert warm == cold
        # mac_latency_cycles stays out of the digest: both ptguard
        # latencies (and both optimized ones) shared a snapshot.
        entries = list(snapshot.snapshot_dir().glob("*.pkl"))
        assert len(entries) == 3  # baseline + ptguard + optimized

    def test_campaign_cell_matches_cold_boot(self, monkeypatch):
        from repro.faults.campaign import run_campaign_cell

        def cells():
            out = []
            for scenario in ("pte_single", "mac_single"):
                cell = run_campaign_cell(scenario, trials=10, seed=3, workload="povray")
                out.append(
                    (dict(cell.outcomes), cell.trials, cell.bits_injected,
                     cell.protected_tampered)
                )
            return out

        monkeypatch.setenv("REPRO_BOOT_SNAPSHOT", "0")
        cold = cells()
        monkeypatch.setenv("REPRO_BOOT_SNAPSHOT", "1")
        snapshot.reset()
        assert cells() == cold
        # The two scenarios share one boot (scenario is not a boot input).
        assert len(list(snapshot.snapshot_dir().glob("*.pkl"))) == 1
