"""The fabric service: admission, tenancy, degradation, acceptance.

The acceptance bar from the issue: a deterministic service-level chaos
test — seeded submission floods, backend kills, greedy tenants — where
every *accepted* sweep completes byte-identical to a serial run of the
same jobs, every *rejected* submission fails fast with a typed
``AdmissionRejected``, and per-tenant caches never cross-contaminate
(distinct paths, identical payload digests for identical jobs).

Everything here runs on an injected clock with paused dispatchers
(``start=False`` + ``drain()``): no sleeps, no real concurrency needed
for determinism — thread-mode coverage lives in one dedicated test.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.common.errors import (
    AdmissionRejected,
    CircuitOpenError,
    ConfigurationError,
    SubmissionCancelled,
    SubmissionNotFound,
)
from repro.harness.parallel import BACKENDS, SimJob, register_job_kind, run_jobs
from repro.service import (
    AsyncFabricService,
    FabricService,
    ServiceChaosPolicy,
    ServiceConfig,
    TokenBucket,
    flood_plan,
    killed_policy,
    tenant_cache_root,
    validate_tenant,
)
from repro.service.breaker import CircuitBreaker


def _double(params):
    return {"doubled": params["value"] * 2}


register_job_kind("svc_double", _double)


def _jobs(count, offset=0):
    return [
        SimJob(kind="svc_double", params={"value": index + offset})
        for index in range(count)
    ]


class Clock:
    """Injectable monotonic clock; time moves only when told to."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return Clock()


def _service(tmp_path, clock, **overrides):
    defaults = dict(
        queue_depth=4,
        dispatchers=1,
        rate_capacity=100.0,
        rate_refill_per_s=10.0,
        backend="threaded",
        workers=2,
    )
    defaults.update(overrides)
    return FabricService(
        cache_root=tmp_path,
        config=ServiceConfig(**defaults),
        time_fn=clock,
        start=False,
    )


# -- tenancy ------------------------------------------------------------------


class TestTenancy:
    @pytest.mark.parametrize(
        "bad", ["", "..", "../alice", "a/b", "a\\b", ".hidden", "x" * 65]
    )
    def test_unsafe_tenant_ids_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="invalid tenant id"):
            validate_tenant(bad)

    def test_same_jobs_distinct_paths_identical_digests(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        jobs = _jobs(3)
        ticket_a = service.submit_sweep(jobs=jobs, tenant="alice")
        ticket_b = service.submit_sweep(jobs=jobs, tenant="bob")
        service.drain()
        assert service.results(ticket_a) == service.results(ticket_b)

        root_a = tenant_cache_root(tmp_path, "alice")
        root_b = tenant_cache_root(tmp_path, "bob")
        assert root_a != root_b
        entries_a = sorted(root_a.glob("??/*.json"))
        entries_b = sorted(root_b.glob("??/*.json"))
        assert len(entries_a) == len(entries_b) == 3
        for path_a, path_b in zip(entries_a, entries_b):
            # Same content-addressed name, same payload digest, but each
            # inside its own tenant subtree — isolation without forking
            # the determinism argument.
            assert path_a.name == path_b.name
            assert path_a != path_b
            record_a = json.loads(path_a.read_text())
            record_b = json.loads(path_b.read_text())
            assert record_a["digest"] == record_b["digest"]
        service.close()


# -- admission ----------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self, clock):
        bucket = TokenBucket(capacity=2, refill_per_s=0.5, time_fn=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(2.0)
        clock.advance(2.0)
        assert bucket.try_acquire()

    def test_zero_capacity_never_admits(self, clock):
        bucket = TokenBucket(capacity=0, refill_per_s=0, time_fn=clock)
        assert not bucket.try_acquire()
        assert bucket.retry_after() is None

    def test_clock_regression_mints_no_tokens(self, clock):
        bucket = TokenBucket(capacity=2, refill_per_s=1.0, time_fn=clock)
        clock.advance(5.0)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        # The clock jumps backwards (VM migration, NTP step on a
        # non-monotonic injection): no free tokens may appear.
        clock.now = 1.0
        assert not bucket.try_acquire()
        assert bucket.tokens == 0.0

    def test_clock_regression_does_not_double_mint_on_return(self, clock):
        bucket = TokenBucket(capacity=10, refill_per_s=1.0, time_fn=clock)
        clock.advance(5.0)
        for _ in range(10):
            assert bucket.try_acquire()
        # Regress, then return to the same instant: the 5.0 -> 1.0 -> 5.0
        # round trip spans zero real forward time, so zero tokens. A
        # refill that moved its watermark backwards would mint 4 here.
        clock.now = 1.0
        assert not bucket.try_acquire()
        clock.now = 5.0
        assert bucket.tokens == 0.0
        assert not bucket.try_acquire()
        # Genuine forward movement resumes minting from the watermark.
        clock.advance(1.0)
        assert bucket.try_acquire()

    def test_retry_after_capped_at_refill_horizon(self, clock):
        bucket = TokenBucket(capacity=4, refill_per_s=2.0, time_fn=clock)
        for _ in range(4):
            assert bucket.try_acquire()
        # Empty bucket: the wait can never exceed the time to refill one
        # token from empty -- tokens/refill_per_s = 0.5s.
        assert bucket.retry_after() == pytest.approx(0.5)
        assert bucket.retry_after() <= bucket.capacity / bucket.refill_per_s


class TestAdmission:
    def test_rate_limited_is_typed_with_retry_hint(self, tmp_path, clock):
        service = _service(
            tmp_path, clock, rate_capacity=1.0, rate_refill_per_s=0.5
        )
        service.submit_sweep(jobs=_jobs(1), tenant="alice")
        with pytest.raises(AdmissionRejected) as info:
            service.submit_sweep(jobs=_jobs(1, 10), tenant="alice")
        assert info.value.reason == "rate_limited"
        assert info.value.tenant == "alice"
        assert info.value.retry_after_s == pytest.approx(2.0)
        # Rate limits are per tenant: bob is unaffected by alice's burst.
        service.submit_sweep(jobs=_jobs(1, 20), tenant="bob")
        clock.advance(2.0)
        service.submit_sweep(jobs=_jobs(1, 30), tenant="alice")
        service.close()

    def test_full_queue_sheds_oldest_of_heaviest_tenant(self, tmp_path, clock):
        service = _service(tmp_path, clock, queue_depth=3)
        oldest = service.submit_sweep(jobs=_jobs(1, 0), tenant="alice")
        service.submit_sweep(jobs=_jobs(1, 1), tenant="alice")
        service.submit_sweep(jobs=_jobs(1, 2), tenant="bob")
        # Queue full; carol displaces alice's *oldest* entry (alice is
        # the heaviest tenant), not bob's.
        kept = service.submit_sweep(jobs=_jobs(1, 3), tenant="carol")
        with pytest.raises(AdmissionRejected) as info:
            service.results(oldest, timeout=0)
        assert info.value.reason == "shed"
        assert info.value.tenant == "alice"
        service.drain()
        assert service.results(kept) == run_jobs(_jobs(1, 3))
        service.close()

    def test_heaviest_newcomer_is_rejected_not_shed(self, tmp_path, clock):
        service = _service(tmp_path, clock, queue_depth=2)
        service.submit_sweep(jobs=_jobs(1, 0), tenant="alice")
        service.submit_sweep(jobs=_jobs(1, 1), tenant="alice")
        # alice dominates the full queue: her next submission cannot
        # displace anyone (that would reward the flooder) -- typed reject.
        with pytest.raises(AdmissionRejected) as info:
            service.submit_sweep(jobs=_jobs(1, 2), tenant="alice")
        assert info.value.reason == "queue_full"
        service.close()

    def test_submit_validates_request_shape(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        with pytest.raises(ConfigurationError, match="exactly one"):
            service.submit_sweep()
        with pytest.raises(ConfigurationError, match="exactly one"):
            service.submit_sweep(jobs=_jobs(1), experiment="fig6")
        with pytest.raises(ConfigurationError, match="empty job list"):
            service.submit_sweep(jobs=[])
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            service.submit_sweep(experiment="fig99")
        service.close()


# -- circuit breaker ----------------------------------------------------------


class TestCircuitBreaker:
    def test_state_machine(self, clock):
        breaker = CircuitBreaker("x", threshold=2, cooldown_s=10, time_fn=clock)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow(), "exactly one probe may pass"
        assert not breaker.allow(), "second probe must wait for the verdict"
        breaker.record_failure()
        assert breaker.state == "open" and breaker.trips == 2
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_service_trips_then_degrades_then_recovers(self, tmp_path, clock):
        service = _service(
            tmp_path, clock, breaker_threshold=2, breaker_cooldown_s=60.0
        )
        # Two chaos-killed submissions with zero retry budget: each
        # surfaces a transient infra failure, reruns in-process
        # (byte-identical), and counts against the threaded breaker.
        for offset in (0, 10):
            ticket = service.submit_sweep(
                jobs=_jobs(2, offset), tenant="alice", policy=killed_policy(7)
            )
            service.drain()
            assert service.results(ticket) == run_jobs(_jobs(2, offset))
            assert service.status(ticket)["degraded"] is True
        health = service.health()
        assert health["status"] == "degraded"
        # Per-backend keyed snapshots, covering every registered backend:
        # the tripped one reads open, the never-used ones read pristine.
        assert health["breakers"]["threaded"] == {
            "backend": "threaded",
            "state": "open",
            "consecutive_failures": 0,
            "trips": 1,
        }
        assert sorted(health["breakers"]) == sorted(BACKENDS)
        for name in BACKENDS:
            if name != "threaded":
                assert health["breakers"][name]["state"] == "closed"
                assert health["breakers"][name]["trips"] == 0
        # The readiness probe carries the same per-backend states.
        probe = service.ready()
        assert probe["ready"] is True and bool(probe) is True
        assert probe["breakers"]["threaded"] == "open"
        # Open circuit: clean submissions route straight to in-process.
        ticket = service.submit_sweep(jobs=_jobs(2, 20), tenant="alice")
        service.drain()
        view = service.status(ticket)
        assert view["backend"] == "inprocess" and view["degraded"] is True
        # After the cooldown one probe runs on the primary backend; its
        # success closes the circuit for everyone.
        clock.advance(60.0)
        ticket = service.submit_sweep(jobs=_jobs(2, 30), tenant="alice")
        service.drain()
        view = service.status(ticket)
        assert view["backend"] == "threaded" and view["degraded"] is False
        assert service.health()["status"] == "ok"
        service.close()

    def test_fail_fast_mode_raises_circuit_open(self, tmp_path, clock):
        service = _service(
            tmp_path,
            clock,
            breaker_threshold=1,
            breaker_cooldown_s=30.0,
            allow_degraded=False,
        )
        first = service.submit_sweep(
            jobs=_jobs(2), tenant="alice", policy=killed_policy(7)
        )
        service.drain()
        with pytest.raises(CircuitOpenError) as info:
            service.results(first)
        assert info.value.backend == "threaded"
        # While open, further submissions fail fast with the cooldown.
        second = service.submit_sweep(jobs=_jobs(2, 10), tenant="alice")
        service.drain()
        with pytest.raises(CircuitOpenError) as info:
            service.results(second)
        assert info.value.retry_after_s == pytest.approx(30.0)
        service.close()


# -- submission lifecycle -----------------------------------------------------


class TestLifecycle:
    def test_cancel_queued_but_not_running(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        ticket = service.submit_sweep(jobs=_jobs(2), tenant="alice")
        assert service.cancel(ticket) is True
        with pytest.raises(SubmissionCancelled):
            service.results(ticket)
        done = service.submit_sweep(jobs=_jobs(2, 10), tenant="alice")
        service.drain()
        assert service.cancel(done) is False, "completed work is not cancellable"
        assert service.results(done) == run_jobs(_jobs(2, 10))
        service.close()

    def test_unknown_ticket_and_timeout(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        with pytest.raises(SubmissionNotFound):
            service.status("s-9999")
        ticket = service.submit_sweep(jobs=_jobs(1), tenant="alice")
        with pytest.raises(TimeoutError):
            service.results(ticket, timeout=0)
        service.drain()
        assert service.results(ticket, timeout=0) == run_jobs(_jobs(1))
        service.close()

    def test_close_rejects_queued_work_typed(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        queued = service.submit_sweep(jobs=_jobs(1), tenant="alice")
        service.close()
        with pytest.raises(AdmissionRejected) as info:
            service.results(queued)
        assert info.value.reason == "shutdown"
        with pytest.raises(AdmissionRejected) as info:
            service.submit_sweep(jobs=_jobs(1, 5), tenant="alice")
        assert info.value.reason == "shutdown"
        assert service.ready()["ready"] is False

    def test_experiment_submission_runs_registry_function(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        ticket = service.submit_sweep(
            experiment="fig6",
            tenant="alice",
            scale=0.25,
            workloads=["povray", "xz"],
        )
        service.drain()
        from repro.harness.experiments import experiment_figure6

        reference = experiment_figure6(
            scale=0.25, workloads=["povray", "xz"], workers=1
        )
        assert service.results(ticket) == reference
        service.close()

    def test_progress_streams_from_journal(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        ticket = service.submit_sweep(jobs=_jobs(4), tenant="alice")
        tail = service.stream_progress(ticket)
        assert tail.progress() == {"completed": 0, "total": None, "done": False}
        service.drain()
        assert tail.progress() == {"completed": 4, "total": 4, "done": True}
        assert service.status(ticket)["progress"]["done"] is True
        service.close()


class TestTerminalResults:
    """results() on any terminal ticket resolves immediately.

    The timeout parameter bounds the wait for an *undecided* outcome;
    a submission that is already done, failed, shed or cancelled must
    return/raise at once even with an absurd timeout — a client polling
    a dead ticket should never block.
    """

    # Far longer than the suite's own timeout: if results() ever waits
    # on a terminal ticket, the wall-clock assertion (and eventually CI)
    # catches it.
    HUGE_TIMEOUT = 3600.0

    def _assert_immediate(self, action):
        import time as _time

        started = _time.monotonic()
        action()
        assert _time.monotonic() - started < 5.0, (
            "terminal results() blocked instead of resolving immediately"
        )

    def test_done_returns_immediately(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        ticket = service.submit_sweep(jobs=_jobs(2), tenant="alice")
        service.drain()
        self._assert_immediate(
            lambda: service.results(ticket, timeout=self.HUGE_TIMEOUT)
        )
        service.close()

    def test_cancelled_raises_immediately(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        ticket = service.submit_sweep(jobs=_jobs(2), tenant="alice")
        assert service.cancel(ticket)
        def read():
            with pytest.raises(SubmissionCancelled):
                service.results(ticket, timeout=self.HUGE_TIMEOUT)
        self._assert_immediate(read)
        service.close()

    def test_shed_raises_immediately(self, tmp_path, clock):
        service = _service(tmp_path, clock, queue_depth=2)
        shed = service.submit_sweep(jobs=_jobs(1, 0), tenant="alice")
        service.submit_sweep(jobs=_jobs(1, 1), tenant="alice")
        service.submit_sweep(jobs=_jobs(1, 2), tenant="bob")
        def read():
            with pytest.raises(AdmissionRejected) as info:
                service.results(shed, timeout=self.HUGE_TIMEOUT)
            assert info.value.reason == "shed"
        self._assert_immediate(read)
        service.close()

    def test_failed_raises_immediately(self, tmp_path, clock):
        register_job_kind(
            "svc_broken",
            lambda params: (_ for _ in ()).throw(ValueError("broken cell")),
        )
        service = _service(tmp_path, clock)
        ticket = service.submit_sweep(
            jobs=[SimJob(kind="svc_broken", params={"value": 1})],
            tenant="alice",
        )
        service.drain()
        def read():
            with pytest.raises(Exception, match="broken cell"):
                service.results(ticket, timeout=self.HUGE_TIMEOUT)
        self._assert_immediate(read)
        service.close()

    def test_shutdown_rejected_raises_immediately(self, tmp_path, clock):
        service = _service(tmp_path, clock)
        ticket = service.submit_sweep(jobs=_jobs(1), tenant="alice")
        service.close()
        def read():
            with pytest.raises(AdmissionRejected) as info:
                service.results(ticket, timeout=self.HUGE_TIMEOUT)
            assert info.value.reason == "shutdown"
        self._assert_immediate(read)


# -- probes and threads -------------------------------------------------------


class TestProbesAndThreads:
    def test_ready_reflects_queue_headroom(self, tmp_path, clock):
        service = _service(tmp_path, clock, queue_depth=2)
        probe = service.ready()
        assert probe["ready"] is True and bool(probe) is True
        assert probe["queue"] == {"depth": 2, "queued": 0, "headroom": 2}
        assert probe["breakers"] == {name: "closed" for name in BACKENDS}
        service.submit_sweep(jobs=_jobs(1, 0), tenant="alice")
        service.submit_sweep(jobs=_jobs(1, 1), tenant="bob")
        probe = service.ready()
        assert probe["ready"] is False and bool(probe) is False
        assert probe["queue"] == {"depth": 2, "queued": 2, "headroom": 0}
        service.drain()
        probe = service.ready()
        assert probe["ready"] is True
        assert probe["queue"]["headroom"] == 2
        # The probe is JSON-able for a future HTTP readiness endpoint.
        assert json.loads(json.dumps(probe)) == dict(probe)
        service.close()

    def test_dispatcher_threads_complete_submissions(self, tmp_path):
        # Real threads + real clock: the one non-drain()-driven test.
        service = FabricService(
            cache_root=tmp_path,
            config=ServiceConfig(
                queue_depth=8, dispatchers=2, backend="threaded", workers=2
            ),
        )
        try:
            tickets = [
                service.submit_sweep(jobs=_jobs(2, 10 * index), tenant="alice")
                for index in range(4)
            ]
            for index, ticket in enumerate(tickets):
                assert service.results(ticket, timeout=30) == run_jobs(
                    _jobs(2, 10 * index)
                )
        finally:
            service.close()

    def test_async_facade_round_trip(self, tmp_path):
        async def scenario():
            async with AsyncFabricService(
                cache_root=tmp_path,
                config=ServiceConfig(
                    queue_depth=4, dispatchers=1, backend="threaded", workers=2
                ),
            ) as service:
                ticket = await service.submit_sweep(
                    jobs=_jobs(3), tenant="alice"
                )
                results = await service.results(ticket, timeout=30)
                health = await service.health()
                return results, health

        results, health = asyncio.run(scenario())
        assert results == run_jobs(_jobs(3))
        assert health["counters"]["completed"] == 1


# -- the acceptance scenario --------------------------------------------------


class TestServiceChaosAcceptance:
    """Seeded flood + backend kills + a greedy tenant, end to end."""

    def test_flood_with_kills_accepted_identical_rejected_typed(
        self, tmp_path, clock
    ):
        # seed=7 deterministically exercises every path in one flood: 7
        # of 14 submissions chaos-killed, 7 completed, 3 shed, 4
        # rejected at submit, and 3 killed submissions completing via
        # the degraded rerun.
        seed = 7
        policy = ServiceChaosPolicy(seed=seed, kill_backend=0.4)
        plan = flood_plan(
            policy,
            tenants=["alice", "bob"],
            per_tenant=4,
            greedy_tenant="greedy",
            greedy_extra=6,
        )
        assert len(plan) == 14
        assert any(entry.killed for entry in plan), "seed must kill some"
        # Replaying the plan builder is byte-stable: same seed, same
        # order, same verdicts.
        assert plan == flood_plan(
            policy,
            tenants=["alice", "bob"],
            per_tenant=4,
            greedy_tenant="greedy",
            greedy_extra=6,
        )

        service = _service(
            tmp_path,
            clock,
            queue_depth=3,
            rate_capacity=1000.0,
            rate_refill_per_s=100.0,
            breaker_threshold=3,
            breaker_cooldown_s=1000.0,
        )
        jobs_of = {
            entry.key: _jobs(2, offset=100 * index)
            for index, entry in enumerate(plan)
        }

        accepted = {}  # plan key -> ticket
        rejected_at_submit = []
        for step, entry in enumerate(plan):
            run_policy = killed_policy(seed) if entry.killed else None
            try:
                ticket = service.submit_sweep(
                    jobs=jobs_of[entry.key],
                    tenant=entry.tenant,
                    policy=run_policy,
                )
            except AdmissionRejected as exc:
                assert exc.reason in {"queue_full", "rate_limited"}
                rejected_at_submit.append(entry.key)
                continue
            accepted[entry.key] = ticket
            if step % 2 == 1:
                service.drain(limit=1)  # interleave work with arrivals
        service.drain()

        shed, completed = [], []
        for key, ticket in accepted.items():
            view = service.status(ticket)
            if view["state"] == "rejected":
                # Shed under load: must fail fast and typed, never hang.
                with pytest.raises(AdmissionRejected) as info:
                    service.results(ticket, timeout=0)
                assert info.value.reason == "shed"
                shed.append(key)
                continue
            assert view["state"] == "done", view
            # THE acceptance property: byte-identical to a quiet serial
            # run of the same jobs, kills and degradation included.
            assert service.results(ticket) == run_jobs(jobs_of[key])
            completed.append(key)

        # The flood must actually have exercised every path.
        assert completed, "some submissions must complete"
        assert shed or rejected_at_submit, "the flood must overload the queue"
        health = service.health()
        assert health["counters"]["completed"] == len(completed)
        assert health["counters"].get("shed", 0) == len(shed)
        killed_completed = [
            key for key in completed
            if any(e.key == key and e.killed for e in plan)
        ]
        assert killed_completed, "killed-then-degraded sweeps must complete"
        assert health["counters"]["degraded_runs"] >= len(killed_completed)

        # No cross-tenant contamination: each tenant's entries live
        # under its own subtree, and no tenant directory holds a key
        # computed for another tenant's exclusive jobs.
        for tenant in ("alice", "bob", "greedy"):
            root = tenant_cache_root(tmp_path, tenant)
            own_keys = {
                job.key()
                for key, ticket in accepted.items()
                for job in jobs_of[key]
                if key.startswith(f"{tenant}:")
            }
            found = {path.stem for path in root.glob("??/*.json")}
            assert found <= own_keys, f"{tenant} cache holds foreign entries"
        service.close()
