"""Tests for the ARMv8 PT-Guard layout (ISA-independence, Sec IV-F)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import arm_pattern
from repro.mmu.pte import make_arm_pte

lines = st.binary(min_size=64, max_size=64)
macs = st.integers(0, 2**96 - 1)
identifiers = st.integers(0, 2**48 - 1)


def arm_pte_line(base_pfn=0x5123, present=8):
    """A realistic ARMv8 leaf-table cacheline (1 TB machine: PFN < 2^28)."""
    import struct

    ptes = [
        make_arm_pte(base_pfn + i, access_permissions=0b01, execute_never=0b10)
        if i < present
        else 0
        for i in range(8)
    ]
    return b"".join(struct.pack("<Q", p) for p in ptes)


class TestCapacity:
    def test_same_mac_budget_as_x86(self):
        """12 unused bits per PTE -> the same 96-bit line MAC."""
        assert arm_pattern.MAC_BITS_PER_LINE == 96

    def test_identifier_budget(self):
        assert arm_pattern.ID_BITS_PER_LINE == 48


class TestPatternMatch:
    def test_real_arm_pte_line_matches(self):
        assert arm_pattern.matches_pattern(arm_pte_line(), extended=True)

    def test_zero_line_matches(self):
        assert arm_pattern.matches_pattern(bytes(64), extended=True)

    def test_large_pfn_breaks_match(self):
        """A PFN above the 1 TB bound occupies the MAC carrier bits."""
        line = arm_pte_line(base_pfn=1 << 30)
        assert not arm_pattern.matches_pattern(line)

    def test_random_data_never_matches(self):
        import random

        rng = random.Random(2)
        assert not any(
            arm_pattern.matches_pattern(rng.randbytes(64)) for _ in range(100)
        )


class TestRoundTrips:
    @given(macs)
    def test_mac_embed_extract(self, tag):
        assert arm_pattern.extract_mac(arm_pattern.embed_mac(bytes(64), tag)) == tag

    @given(lines, macs)
    def test_embed_preserves_other_bits(self, line, tag):
        stored = arm_pattern.embed_mac(line, tag)
        assert arm_pattern.strip_mac(stored) == arm_pattern.strip_mac(line)

    @given(identifiers)
    def test_identifier_embed_extract(self, ident):
        stored = arm_pattern.embed_identifier(bytes(64), ident)
        assert arm_pattern.extract_identifier(stored) == ident

    def test_strip_restores_pte_line(self):
        line = arm_pte_line()
        stored = arm_pattern.embed_identifier(
            arm_pattern.embed_mac(line, (1 << 96) - 1), (1 << 48) - 1
        )
        assert arm_pattern.strip_metadata(stored) == line

    def test_oversized_rejected(self):
        with pytest.raises(ValueError):
            arm_pattern.embed_mac(bytes(64), 1 << 96)
        with pytest.raises(ValueError):
            arm_pattern.embed_identifier(bytes(64), 1 << 48)


class TestProtection:
    def test_accessed_flag_unprotected(self):
        pmask = arm_pattern.protected_bits_mask()
        assert (pmask >> arm_pattern.ACCESSED_BIT) & 1 == 0

    def test_security_metadata_protected(self):
        """Valid bit, AP bits, XN bits and the PFN must be covered."""
        pmask = arm_pattern.protected_bits_mask()
        for bit in (0, 6, 7, 12, 39, 53, 54):
            assert (pmask >> bit) & 1 == 1, f"bit {bit} uncovered"

    def test_metadata_carriers_unprotected(self):
        pmask = arm_pattern.protected_bits_mask()
        for bit in list(range(40, 51)) + [8, 9, 55, 56, 57, 58, 63]:
            assert (pmask >> bit) & 1 == 0, f"bit {bit} wrongly covered"

    @given(lines)
    def test_mask_idempotent(self, line):
        masked = arm_pattern.mask_unprotected(line)
        assert arm_pattern.mask_unprotected(masked) == masked


class TestEndToEndWithMAC:
    def test_tamper_detection_on_arm_line(self):
        """The full PT-Guard check using the ARM layout + a real MAC."""
        from repro.crypto.mac import Blake2LineMAC

        mac = Blake2LineMAC(bytes(range(32)))
        line = arm_pte_line()
        tag = mac.compute(arm_pattern.mask_unprotected(line), 0x8000)
        stored = arm_pattern.embed_mac(line, tag)
        # verify
        recomputed = mac.compute(arm_pattern.mask_unprotected(stored), 0x8000)
        assert recomputed == arm_pattern.extract_mac(stored)
        # tamper with the AP bits (privilege escalation on ARM)
        tampered = bytearray(stored)
        tampered[0] ^= 0x40  # bit 6: access permissions
        recomputed = mac.compute(
            arm_pattern.mask_unprotected(bytes(tampered)), 0x8000
        )
        assert recomputed != arm_pattern.extract_mac(bytes(tampered))
