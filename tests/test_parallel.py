"""Tests for the parallel experiment fabric (repro.harness.parallel).

The contract under test: serial (workers=1), parallel (workers>1) and
cached executions of the same experiment produce byte-identical report
strings; the content-addressed cache key changes whenever anything that
could change a result changes (config, seed, schema version); and a job
that raises in a worker surfaces as a clear SimJobError, never a hang.
"""

from __future__ import annotations

import pytest

from repro.harness import parallel
from repro.harness.experiments import (
    experiment_figure6,
    experiment_figure7,
    experiment_figure9,
)
from repro.harness.parallel import (
    ResultCache,
    SimJob,
    SimJobError,
    default_workers,
    register_job_kind,
    run_jobs,
)

QUARTER = 0.25
FIG_WORKLOADS = ["povray", "xz"]  # one quiet + one memory-heavy workload


# -- bit-identity: serial vs parallel vs cached -------------------------------


class TestReportBitIdentity:
    def test_figure6_reports_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        serial = experiment_figure6(scale=QUARTER, workloads=FIG_WORKLOADS, workers=1)
        parallel_cold = experiment_figure6(
            scale=QUARTER, workloads=FIG_WORKLOADS, workers=2, cache=cache
        )
        cached_warm = experiment_figure6(
            scale=QUARTER, workloads=FIG_WORKLOADS, workers=2, cache=cache
        )
        assert serial == parallel_cold
        assert serial == cached_warm
        assert cache.hits > 0  # the warm pass really came from the cache

    def test_figure7_reports_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        serial = experiment_figure7(scale=QUARTER, workloads=FIG_WORKLOADS, workers=1)
        parallel_cold = experiment_figure7(
            scale=QUARTER, workloads=FIG_WORKLOADS, workers=2, cache=cache
        )
        cached_warm = experiment_figure7(
            scale=QUARTER, workloads=FIG_WORKLOADS, workers=2, cache=cache
        )
        assert serial == parallel_cold
        assert serial == cached_warm

    def test_figure9_reports_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        workloads = ("povray", "mcf")
        serial = experiment_figure9(scale=QUARTER, workloads=workloads, workers=1)
        parallel_cold = experiment_figure9(
            scale=QUARTER, workloads=workloads, workers=2, cache=cache
        )
        cached_warm = experiment_figure9(
            scale=QUARTER, workloads=workloads, workers=2, cache=cache
        )
        assert serial == parallel_cold
        assert serial == cached_warm


# -- job keys and cache invalidation ------------------------------------------


def _job(**overrides) -> SimJob:
    params = {
        "workload": "povray",
        "config": None,
        "mem_ops": 1000,
        "warmup_ops": 500,
        "seed": 1,
        "mac_algorithm": "pseudo",
    }
    params.update(overrides)
    return SimJob(kind="workload_run", params=params)


class TestCacheKeys:
    def test_key_is_stable_across_param_order(self):
        a = SimJob("k", {"x": 1, "y": 2})
        b = SimJob("k", {"y": 2, "x": 1})
        assert a.key() == b.key()

    def test_config_change_changes_key(self):
        from repro.common.config import PTGuardConfig
        from repro.harness.parallel import guard_config_params

        base = _job()
        guarded = _job(config=guard_config_params(PTGuardConfig()))
        tweaked = _job(
            config=guard_config_params(PTGuardConfig(mac_latency_cycles=15))
        )
        assert len({base.key(), guarded.key(), tweaked.key()}) == 3

    def test_seed_change_changes_key(self):
        assert _job(seed=1).key() != _job(seed=2).key()

    def test_schema_bump_changes_key(self, monkeypatch):
        before = _job().key()
        monkeypatch.setattr(
            parallel, "CACHE_SCHEMA_VERSION", parallel.CACHE_SCHEMA_VERSION + 1
        )
        assert _job().key() != before

    def test_stale_entries_unreachable_after_changes(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_job(), {"marker": 1})
        assert cache.get(_job()) == {"marker": 1}
        assert cache.get(_job(seed=99)) is None
        assert cache.get(_job(mem_ops=2000)) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, {"marker": 1})
        cache._path(job.key()).write_text("not json", encoding="utf-8")
        assert cache.get(job) is None


# -- execution semantics ------------------------------------------------------


def _explode(params):
    raise ValueError(f"boom on {params['cell']}")


def _double(params):
    return params["value"] * 2


register_job_kind("test_explode", _explode)
register_job_kind("test_double", _double)


class TestRunJobs:
    def test_results_in_job_order(self):
        jobs = [SimJob("test_double", {"value": v}) for v in range(8)]
        assert run_jobs(jobs, workers=1) == [v * 2 for v in range(8)]
        assert run_jobs(jobs, workers=3) == [v * 2 for v in range(8)]

    def test_worker_crash_surfaces_clear_error(self):
        jobs = [
            SimJob("test_double", {"value": 1}),
            SimJob("test_explode", {"cell": "fig6/povray"}),
        ]
        with pytest.raises(SimJobError) as excinfo:
            run_jobs(jobs, workers=2)
        message = str(excinfo.value)
        assert "test_explode" in message
        assert "fig6/povray" in message  # job identity, not just a traceback
        assert "ValueError" in message  # the original exception survives

    def test_in_process_crash_surfaces_same_error(self):
        with pytest.raises(SimJobError, match="test_explode"):
            run_jobs([SimJob("test_explode", {"cell": "x"})], workers=1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimJobError, match="unknown job kind"):
            run_jobs([SimJob("no_such_kind", {})], workers=1)

    def test_cache_skips_execution(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [SimJob("test_double", {"value": v}) for v in range(4)]
        first = run_jobs(jobs, workers=2, cache=cache)
        assert cache.misses == 4 and cache.hits == 0
        second = run_jobs(jobs, workers=2, cache=cache)
        assert second == first
        assert cache.hits == 4

    def test_default_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert default_workers() == 7
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "nope")
        monkeypatch.setattr("os.cpu_count", lambda: 5)
        assert default_workers() == 5


class TestMulticoreJob:
    def test_slowdown_job_identity_and_key(self):
        from repro.cpu.multicore import slowdown_job

        a = slowdown_job(["lbm"] * 4, mem_ops_per_core=100)
        b = slowdown_job(("lbm",) * 4, mem_ops_per_core=100)
        assert a == b and a.key() == b.key()
        assert a.key() != slowdown_job(["lbm"] * 4, mem_ops_per_core=200).key()
        assert a.params["seed"] == 3  # the emitter fixes the seed in the key
