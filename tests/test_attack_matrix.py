"""Tests for the attack-vs-defense matrices (the paper's security story)."""

import pytest

from repro.analysis.attack_matrix import (
    run_consumption_matrix,
    run_flip_experiment,
)


@pytest.fixture(scope="module")
def consumption():
    return run_consumption_matrix()


class TestFlipLayer:
    """One representative cell per claim (full grid lives in the bench)."""

    def test_undefended_double_sided_flips(self):
        assert run_flip_experiment("none", "double-sided").victim_flipped

    def test_half_double_needs_a_defense_to_work(self):
        """Without victim refreshes, direct distance-2 coupling is too weak
        to flip the distance-2 victim (the aggressors' *adjacent* rows
        still flip — that is ordinary distance-1 physics)."""
        cell = run_flip_experiment("none", "half-double")
        assert not cell.victim_flipped

    def test_trr_stops_double_sided(self):
        assert not run_flip_experiment("TRR", "double-sided").victim_flipped

    def test_trr_breached_by_many_sided(self):
        """TRRespass [15]: more aggressors than sampler entries."""
        assert run_flip_experiment("TRR", "many-sided").any_flips

    def test_trr_breached_by_half_double(self):
        """Half-Double [30]: the mitigation's refreshes hammer distance 2."""
        cell = run_flip_experiment("TRR", "half-double")
        assert cell.victim_flipped
        assert cell.mitigation_refreshes > 0

    def test_counter_trr_stops_many_sided_but_not_half_double(self):
        assert not run_flip_experiment("CounterTRR", "many-sided").any_flips
        assert run_flip_experiment("CounterTRR", "half-double").victim_flipped

    def test_low_rth_module_breaks_counter_trr(self):
        """Sec II-B: design-time threshold assumptions fail on newer DRAM."""
        assert run_flip_experiment("CounterTRR-lowRTH", "double-sided").victim_flipped

    def test_softtrr_protects_distance_one_but_not_half_double(self):
        assert not run_flip_experiment("SoftTRR", "double-sided").victim_flipped
        assert run_flip_experiment("SoftTRR", "half-double").victim_flipped


class TestConsumptionLayer:
    def _cell(self, consumption, protection, scenario):
        for cell in consumption:
            if cell.protection == protection and cell.scenario == scenario:
                return cell
        raise KeyError((protection, scenario))

    def test_secwalk_catches_small_flips(self, consumption):
        assert self._cell(consumption, "SecWalk", "pfn-1flip-down").prevented
        assert self._cell(consumption, "SecWalk", "user-bit").prevented

    def test_secwalk_misses_five_flips(self, consumption):
        assert not self._cell(consumption, "SecWalk", "pfn-5flips").prevented

    def test_monotonic_misses_metadata(self, consumption):
        for scenario in ("user-bit", "nx-bit", "mpk-bits"):
            assert not self._cell(consumption, "MonotonicPointers", scenario).prevented

    def test_monotonic_misses_upward_flip(self, consumption):
        assert not self._cell(consumption, "MonotonicPointers", "pfn-1flip-up").prevented

    def test_ptguard_prevents_everything_tested(self, consumption):
        ptguard_cells = [c for c in consumption if c.protection == "PT-Guard"]
        assert ptguard_cells
        assert all(c.prevented for c in ptguard_cells)

    def test_every_prior_defense_has_a_gap(self, consumption):
        """The motivating claim: each prior protection misses something."""
        for protection in ("SecWalk", "MonotonicPointers"):
            cells = [c for c in consumption if c.protection == protection]
            assert any(not c.prevented for c in cells)
