"""Tests for the system assembly harness."""

import pytest

from repro import PTGuardConfig, RowhammerProfile, SystemConfig, build_system
from repro.common.config import optimized_ptguard_config
from repro.cpu.workloads import get_workload


class TestBuildSystem:
    def test_baseline_has_no_guard(self):
        system = build_system()
        assert system.guard is None
        assert system.controller.ptguard is None

    def test_guarded_system_wired_through(self):
        system = build_system(ptguard=PTGuardConfig())
        assert system.guard is system.controller.ptguard

    def test_config_embedded_guard_used(self):
        config = SystemConfig().with_ptguard(optimized_ptguard_config())
        system = build_system(config=config)
        assert system.guard is not None
        assert system.guard.config.identifier_enabled

    def test_explicit_guard_overrides(self):
        config = SystemConfig()
        system = build_system(config=config, ptguard=PTGuardConfig(mac_bits=64))
        assert system.guard.config.mac_bits == 64

    def test_rowhammer_profile_attached(self):
        profile = RowhammerProfile.scaled()
        system = build_system(rowhammer=profile)
        assert system.dram.rowhammer.profile is profile

    def test_memory_shared_across_layers(self):
        system = build_system()
        assert system.dram.memory is system.memory
        assert system.kernel.controller is system.controller

    def test_seed_determinism(self):
        a = build_system(ptguard=PTGuardConfig(), seed=5)
        b = build_system(ptguard=PTGuardConfig(), seed=5)
        assert a.guard.identifier == b.guard.identifier
        line = bytes(64)
        assert (
            a.guard.process_write(0, line).stored_line
            == b.guard.process_write(0, line).stored_line
        )

    def test_coherence_attached(self):
        system = build_system()
        system.hierarchy.read(0x9000)
        system.controller.write_line(0x9000, b"k" * 64)
        assert system.hierarchy.read(0x9000).data == b"k" * 64


class TestWorkloadProcess:
    def test_regions_mapped(self):
        system = build_system()
        process, trace = system.workload_process(get_workload("xz"))
        names = {vma.name for vma in process.vmas}
        assert names == {"hot", "cold"}
        cold = next(v for v in process.vmas if v.name == "cold")
        assert cold.num_pages * 4096 == trace.regions.cold_bytes

    def test_new_core_private_walker(self):
        system = build_system()
        p1, _ = system.workload_process(get_workload("xz"))
        core_a = system.new_core(p1)
        core_b = system.new_core(p1)
        assert core_a.walker is not core_b.walker
        assert core_a.hierarchy is core_b.hierarchy  # single-socket L1 share
