"""Unit + property tests for repro.common.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import bitops


class TestMask:
    def test_zero_width(self):
        assert bitops.mask(0) == 0

    def test_small(self):
        assert bitops.mask(12) == 0xFFF

    def test_large(self):
        assert bitops.mask(96) == (1 << 96) - 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bitops.mask(-1)


class TestBitExtraction:
    def test_bit(self):
        assert bitops.bit(0b1010, 1) == 1
        assert bitops.bit(0b1010, 0) == 0

    def test_bits_inclusive(self):
        assert bitops.bits(0xABCD, 15, 12) == 0xA
        assert bitops.bits(0xABCD, 3, 0) == 0xD

    def test_bits_single(self):
        assert bitops.bits(0b100, 2, 2) == 1

    def test_bits_bad_range(self):
        with pytest.raises(ValueError):
            bitops.bits(0, 0, 1)


class TestInsertBits:
    def test_insert(self):
        assert bitops.insert_bits(0, 15, 12, 0xA) == 0xA000

    def test_insert_clears_old(self):
        assert bitops.insert_bits(0xF000, 15, 12, 0x3) == 0x3000

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            bitops.insert_bits(0, 3, 0, 0x10)

    def test_clear(self):
        assert bitops.clear_bits(0xFFFF, 11, 4) == 0xF00F

    @given(st.integers(0, 2**64 - 1), st.integers(0, 63), st.integers(0, 63))
    def test_insert_then_extract_roundtrip(self, value, a, b):
        high, low = max(a, b), min(a, b)
        field = value & bitops.mask(high - low + 1)
        combined = bitops.insert_bits(value, high, low, field)
        assert bitops.bits(combined, high, low) == field


class TestPopcountHamming:
    def test_popcount(self):
        assert bitops.popcount(0b1011) == 3

    def test_hamming_symmetry(self):
        assert bitops.hamming_distance(0b1100, 0b1010) == 2

    @given(st.integers(0, 2**96 - 1), st.integers(0, 2**96 - 1))
    def test_hamming_is_metric(self, a, b):
        assert bitops.hamming_distance(a, b) == bitops.hamming_distance(b, a)
        assert bitops.hamming_distance(a, a) == 0

    @given(st.integers(0, 2**64 - 1), st.integers(0, 63))
    def test_flip_changes_distance_by_one(self, value, position):
        flipped = bitops.flip_bit(value, position)
        assert bitops.hamming_distance(value, flipped) == 1
        assert bitops.flip_bit(flipped, position) == value


class TestRotations:
    def test_rotl(self):
        assert bitops.rotl(0b0001, 1, 4) == 0b0010
        assert bitops.rotl(0b1000, 1, 4) == 0b0001

    def test_rotr_inverse_of_rotl(self):
        value = 0xDEADBEEF
        assert bitops.rotr(bitops.rotl(value, 13, 32), 13, 32) == value

    @given(st.integers(0, 2**16 - 1), st.integers(0, 64))
    def test_rotl_full_cycle(self, value, amount):
        assert bitops.rotl(value, 16, 16) == value
        assert bitops.rotl(bitops.rotl(value, amount, 16), 16 - amount % 16, 16) == value


class TestByteConversions:
    @given(st.binary(min_size=1, max_size=64))
    def test_bytes_roundtrip(self, data):
        assert bitops.int_to_bytes(bitops.bytes_to_int(data), len(data)) == data

    def test_little_endian(self):
        assert bitops.bytes_to_int(b"\x01\x02") == 0x0201


class TestPow2:
    def test_is_pow2(self):
        assert bitops.is_pow2(1)
        assert bitops.is_pow2(4096)
        assert not bitops.is_pow2(0)
        assert not bitops.is_pow2(12)
        assert not bitops.is_pow2(-4)

    def test_log2_exact(self):
        assert bitops.log2_exact(4096) == 12

    def test_log2_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            bitops.log2_exact(12)
