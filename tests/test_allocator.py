"""Tests for the buddy page-frame allocator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import AllocationError
from repro.os.allocator import MAX_ORDER, BuddyAllocator


class TestBasics:
    def test_alloc_returns_absolute_pfn(self):
        allocator = BuddyAllocator(base_pfn=256, num_pages=1024)
        pfn = allocator.alloc_page()
        assert 256 <= pfn < 256 + 1024

    def test_counts(self):
        allocator = BuddyAllocator(0, 1024)
        allocator.alloc_page()
        allocator.alloc_pages(3)
        assert allocator.allocated_pages_count == 1 + 8
        assert allocator.free_pages_count == 1024 - 9

    def test_exhaustion(self):
        allocator = BuddyAllocator(0, 4)
        for _ in range(4):
            allocator.alloc_page()
        with pytest.raises(AllocationError):
            allocator.alloc_page()

    def test_order_bounds(self):
        allocator = BuddyAllocator(0, 1024)
        with pytest.raises(AllocationError):
            allocator.alloc_pages(MAX_ORDER + 1)

    def test_block_alignment(self):
        allocator = BuddyAllocator(0, 1 << MAX_ORDER)
        pfn = allocator.alloc_pages(4)
        assert pfn % 16 == 0


class TestContiguity:
    def test_sequential_allocs_are_contiguous_runs(self):
        """The Fig-8 mechanism: order-0 pages carved from one split block
        come back with consecutive PFNs."""
        allocator = BuddyAllocator(0, 1024)
        pfns = [allocator.alloc_page() for _ in range(64)]
        contiguous_steps = sum(
            1 for a, b in zip(pfns, pfns[1:]) if abs(b - a) == 1
        )
        assert contiguous_steps >= 48  # the large majority


class TestFree:
    def test_free_then_realloc(self):
        allocator = BuddyAllocator(0, 16)
        pfn = allocator.alloc_page()
        allocator.free_pages(pfn)
        assert allocator.free_pages_count == 16

    def test_double_free_rejected(self):
        allocator = BuddyAllocator(0, 16)
        pfn = allocator.alloc_page()
        allocator.free_pages(pfn)
        with pytest.raises(AllocationError):
            allocator.free_pages(pfn)

    def test_bogus_free_rejected(self):
        allocator = BuddyAllocator(0, 16)
        with pytest.raises(AllocationError):
            allocator.free_pages(3)

    def test_coalescing_restores_large_blocks(self):
        allocator = BuddyAllocator(0, 16)
        pfns = [allocator.alloc_page() for _ in range(16)]
        for pfn in pfns:
            allocator.free_pages(pfn)
        # After freeing everything, an order-4 block must be allocatable.
        assert allocator.alloc_pages(4) == 0

    def test_fragmentation_metric(self):
        allocator = BuddyAllocator(0, 64)
        assert allocator.fragmentation() == pytest.approx(0.0)
        held = [allocator.alloc_page() for _ in range(64)]
        for pfn in held[::2]:
            allocator.free_pages(pfn)
        assert allocator.fragmentation() > 0.9  # only order-0 holes


class TestInvariants:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 3), max_size=60), st.integers(0, 2**32 - 1))
    def test_no_double_allocation_and_conservation(self, orders, seed):
        """Property: live blocks never overlap; free+allocated = total."""
        rng = random.Random(seed)
        allocator = BuddyAllocator(0, 512)
        live = {}  # base pfn -> size
        for order in orders:
            if live and rng.random() < 0.4:
                base = rng.choice(list(live))
                allocator.free_pages(base)
                del live[base]
                continue
            try:
                base = allocator.alloc_pages(order)
            except AllocationError:
                continue
            size = 1 << order
            for other, other_size in live.items():
                assert base + size <= other or other + other_size <= base, \
                    "overlapping allocation"
            live[base] = size
        assert allocator.allocated_pages_count == sum(live.values())
        assert allocator.free_pages_count == 512 - sum(live.values())

    def test_odd_total_covered(self):
        allocator = BuddyAllocator(0, 1000)  # not a power of two
        assert allocator.free_pages_count == 1000
        seen = set()
        for _ in range(1000):
            pfn = allocator.alloc_page()
            assert pfn not in seen and 0 <= pfn < 1000
            seen.add(pfn)
