"""Tests for the PT-Guard mechanism itself (write/read transformations)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import PTGuardConfig, optimized_ptguard_config
from repro.core import pattern
from repro.core.guard import PTGuard
from repro.mmu.pte import make_x86_pte

ADDRESS = 0x7F000


def pte_line(base_pfn=0x2E5F3, present=8):
    return pattern.join_ptes(
        [make_x86_pte(base_pfn + i, user=True) if i < present else 0 for i in range(8)]
    )


def data_line(seed=3):
    """Random data whose metadata fields are non-zero (no pattern match)."""
    rng = random.Random(seed)
    while True:
        line = rng.randbytes(64)
        if not pattern.matches_pattern(line):
            return line


@pytest.fixture()
def guard():
    return PTGuard(PTGuardConfig(), mac_algorithm="blake2")


@pytest.fixture()
def optimized():
    return PTGuard(optimized_ptguard_config(), mac_algorithm="blake2")


@pytest.fixture()
def correcting():
    return PTGuard(PTGuardConfig(correction_enabled=True), mac_algorithm="blake2")


class TestWritePath:
    def test_pte_line_gets_mac(self, guard):
        outcome = guard.process_write(ADDRESS, pte_line())
        assert outcome.embedded
        assert pattern.extract_mac(outcome.stored_line) != 0
        assert pattern.strip_mac(outcome.stored_line) == pte_line()

    def test_zero_line_gets_mac(self, guard):
        outcome = guard.process_write(ADDRESS, bytes(64))
        assert outcome.embedded

    def test_nonmatching_data_unchanged(self, guard):
        line = data_line()
        outcome = guard.process_write(ADDRESS, line)
        assert not outcome.embedded
        assert outcome.stored_line == line

    def test_identifier_embedded_in_optimized(self, optimized):
        outcome = optimized.process_write(ADDRESS, pte_line())
        assert pattern.extract_identifier(outcome.stored_line) == optimized.identifier

    def test_extended_pattern_excludes_id_field_users(self, optimized):
        """A line with non-zero bits 58:52 is not protected by Optimized
        PT-Guard even though its MAC field is zero (Sec V-A)."""
        line = pattern.embed_identifier(bytes(64), 1)
        outcome = optimized.process_write(ADDRESS, line)
        assert not outcome.embedded

    def test_baseline_still_protects_that_line(self, guard):
        line = pattern.embed_identifier(bytes(64), 1)
        assert guard.process_write(ADDRESS, line).embedded


class TestReadPTEPath:
    def test_roundtrip_strips_mac(self, guard):
        stored = guard.process_write(ADDRESS, pte_line()).stored_line
        outcome = guard.process_read(ADDRESS, stored, is_pte=True)
        assert outcome.mac_matched and outcome.stripped
        assert outcome.line == pte_line()
        assert outcome.latency_cycles == guard.config.mac_latency_cycles

    def test_tamper_detected(self, guard):
        stored = bytearray(guard.process_write(ADDRESS, pte_line()).stored_line)
        stored[0] ^= 0x04  # user bit
        outcome = guard.process_read(ADDRESS, bytes(stored), is_pte=True)
        assert outcome.pte_check_failed and not outcome.stripped

    def test_any_single_protected_bit_flip_detected(self, guard):
        """Exhaustively: every protected-bit flip in a PTE line fails the
        MAC check (the Sec IV-G invariant at flip granularity)."""
        stored = guard.process_write(ADDRESS, pte_line()).stored_line
        for index in range(8):
            for bit in pattern.protected_bit_positions(40)[::5]:  # sample
                tampered = bytearray(stored)
                tampered[index * 8 + bit // 8] ^= 1 << (bit % 8)
                outcome = guard.process_read(ADDRESS, bytes(tampered), is_pte=True)
                assert outcome.pte_check_failed

    def test_wrong_address_detected(self, guard):
        """The MAC binds the line to its physical address: a relocated
        copy (ditto attack) fails verification."""
        stored = guard.process_write(ADDRESS, pte_line()).stored_line
        outcome = guard.process_read(ADDRESS + 64, stored, is_pte=True)
        assert outcome.pte_check_failed

    def test_correction_repairs_single_flip(self, correcting):
        stored = bytearray(correcting.process_write(ADDRESS, pte_line()).stored_line)
        stored[10] ^= 0x40
        outcome = correcting.process_read(ADDRESS, bytes(stored), is_pte=True)
        assert outcome.corrected and not outcome.pte_check_failed
        assert outcome.line == pte_line()
        assert outcome.corrected_stored_line is not None

    def test_corrected_line_reverifies(self, correcting):
        stored = bytearray(correcting.process_write(ADDRESS, pte_line()).stored_line)
        stored[10] ^= 0x40
        outcome = correcting.process_read(ADDRESS, bytes(stored), is_pte=True)
        again = correcting.process_read(
            ADDRESS, outcome.corrected_stored_line, is_pte=True
        )
        assert again.mac_matched and not again.corrected


class TestReadDataPath:
    def test_protected_data_stripped(self, guard):
        stored = guard.process_write(ADDRESS, bytes(64)).stored_line
        outcome = guard.process_read(ADDRESS, stored, is_pte=False)
        assert outcome.stripped and outcome.line == bytes(64)

    def test_unprotected_data_forwarded_with_latency(self, guard):
        line = data_line()
        outcome = guard.process_read(ADDRESS, line, is_pte=False)
        assert not outcome.stripped and outcome.line == line
        # Baseline PT-Guard pays MAC latency on ALL reads (Sec IV-H).
        assert outcome.latency_cycles == guard.config.mac_latency_cycles

    def test_flipped_protected_data_forwarded_as_is(self, guard):
        stored = bytearray(guard.process_write(ADDRESS, pte_line()).stored_line)
        stored[0] ^= 0x01
        outcome = guard.process_read(ADDRESS, bytes(stored), is_pte=False)
        # Sec IV-E: no new failure mode; line forwarded unchanged.
        assert not outcome.stripped and outcome.line == bytes(stored)
        assert not outcome.pte_check_failed


class TestOptimizedReadPath:
    def test_identifier_filter_skips_mac_unit(self, optimized):
        line = data_line()
        outcome = optimized.process_read(ADDRESS, line, is_pte=False)
        assert outcome.latency_cycles == 0
        assert optimized.stats.get("identifier_filtered") == 1

    def test_identifier_match_triggers_check_and_strip(self, optimized):
        stored = optimized.process_write(ADDRESS, pte_line()).stored_line
        outcome = optimized.process_read(ADDRESS, stored, is_pte=False)
        assert outcome.stripped and outcome.line == pte_line()
        assert outcome.latency_cycles == optimized.config.mac_latency_cycles

    def test_zero_line_fast_path_no_latency(self, optimized):
        stored = optimized.process_write(ADDRESS, bytes(64)).stored_line
        outcome = optimized.process_read(ADDRESS, stored, is_pte=False)
        assert outcome.latency_cycles == 0
        assert outcome.line == bytes(64)
        assert optimized.stats.get("zero_line_fastpath") == 1

    def test_never_written_zero_line_fast_path(self, optimized):
        outcome = optimized.process_read(ADDRESS, bytes(64), is_pte=False)
        assert outcome.latency_cycles == 0 and outcome.line == bytes(64)

    def test_pte_walks_always_checked(self, optimized):
        stored = bytearray(optimized.process_write(ADDRESS, pte_line()).stored_line)
        stored[1] ^= 0x10
        outcome = optimized.process_read(ADDRESS, bytes(stored), is_pte=True)
        assert outcome.pte_check_failed


class TestCollisions:
    def _colliding_line(self, guard):
        """Forge a line whose data bits equal its own computed MAC —
        the known-plaintext construction of Sec IV-G."""
        base = bytearray(data_line())
        for index in range(8):
            base[index * 8 + 5] = 0
            base[index * 8 + 6] &= 0xF0
        tag = guard.engine.compute(bytes(base), ADDRESS)
        line = pattern.embed_mac(bytes(base), tag)
        # ensure it does NOT match the write pattern (mac field nonzero)
        assert not pattern.matches_pattern(line)
        return line

    def test_colliding_line_tracked_and_forwarded(self, guard):
        line = self._colliding_line(guard)
        outcome = guard.process_write(ADDRESS, line)
        assert outcome.collision
        read = guard.process_read(ADDRESS, line, is_pte=False)
        assert read.ctb_hit and read.line == line and not read.stripped

    def test_without_ctb_the_line_would_be_mangled(self, guard):
        """Demonstrates why the CTB exists: the MAC compare alone would
        strip data bits from a colliding line."""
        line = self._colliding_line(guard)
        read = guard.process_read(ADDRESS, line, is_pte=False)  # not tracked
        assert read.stripped and read.line != line

    def test_overwrite_clears_ctb_entry(self, guard):
        line = self._colliding_line(guard)
        guard.process_write(ADDRESS, line)
        assert len(guard.ctb) == 1
        guard.process_write(ADDRESS, data_line(99))
        assert len(guard.ctb) == 0


class TestRekey:
    def test_rekey_changes_macs(self, guard):
        stored_old = guard.process_write(ADDRESS, pte_line()).stored_line
        guard.rekey()
        stored_new = guard.process_write(ADDRESS, pte_line()).stored_line
        assert pattern.extract_mac(stored_old) != pattern.extract_mac(stored_new)
        assert guard.epoch == 1

    def test_old_macs_fail_after_rekey(self, guard):
        stored_old = guard.process_write(ADDRESS, pte_line()).stored_line
        guard.rekey()
        outcome = guard.process_read(ADDRESS, stored_old, is_pte=True)
        assert outcome.pte_check_failed

    def test_rekey_clears_ctb(self, guard):
        guard.ctb.insert(64)
        guard.rekey()
        assert len(guard.ctb) == 0


class TestSRAMBudget:
    def test_baseline_52_bytes(self, guard):
        assert guard.sram_bytes == 52

    def test_optimized_71_bytes(self, optimized):
        assert optimized.sram_bytes == 71


class TestReducedMAC:
    def test_64_bit_design_option(self):
        """Sec VII-A: a 64-bit MAC without correction is a valid point."""
        guard = PTGuard(PTGuardConfig(mac_bits=64), mac_algorithm="blake2")
        stored = guard.process_write(ADDRESS, pte_line()).stored_line
        outcome = guard.process_read(ADDRESS, stored, is_pte=True)
        assert outcome.mac_matched and outcome.line == pte_line()
        tampered = bytearray(stored)
        tampered[0] ^= 1
        assert guard.process_read(ADDRESS, bytes(tampered), is_pte=True).pte_check_failed


class TestStatsRoundtrip:
    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=64, max_size=64))
    def test_write_read_never_corrupts_benign_data(self, line):
        """Property: for ANY line, write-then-read through the guard
        returns the original data (CTB covers collisions)."""
        guard = PTGuard(PTGuardConfig(), mac_algorithm="blake2")
        stored = guard.process_write(ADDRESS, line).stored_line
        read = guard.process_read(ADDRESS, stored, is_pte=False)
        if pattern.matches_pattern(line):
            assert read.line == pattern.strip_mac(line)
        else:
            assert read.line == line
