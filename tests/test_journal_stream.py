"""Streaming journal tails: monotone prefixes under every failure mode.

The invariant under test (repro.service.progress.JournalTail): the
record sequence a tail has yielded is always a monotonically growing
prefix of the journal — records are never yielded twice, never skipped,
and never yielded torn, under torn tails, concurrent appends and any
``REPRO_JOURNAL_FLUSH`` batching.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.harness.parallel import (
    ResultCache,
    SimJob,
    SweepJournal,
    register_job_kind,
    run_jobs,
    sweep_id,
)
from repro.service.progress import JournalTail


def _record(index):
    return {"event": "job_done", "key": f"k{index:03d}", "attempt": 1}


def _write_lines(path, records, tail_fragment=""):
    body = "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
    path.write_text(body + tail_fragment, encoding="utf-8")


register_job_kind("stream_double", lambda p: {"doubled": p["value"] * 2})


def _jobs(count):
    return [
        SimJob(kind="stream_double", params={"value": index})
        for index in range(count)
    ]


class TestTornTail:
    def test_missing_file_is_empty_poll(self, tmp_path):
        tail = JournalTail(tmp_path / "absent.jsonl")
        assert tail.poll() == []
        assert tail.progress() == {"completed": 0, "total": None, "done": False}

    def test_unterminated_line_left_for_next_poll(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        records = [_record(0), _record(1)]
        torn = json.dumps(_record(2), sort_keys=True)[:-7]  # mid-append
        _write_lines(path, records, tail_fragment=torn)

        tail = JournalTail(path)
        assert tail.poll() == records
        assert tail.poll() == [], "torn tail must not be consumed"

        # The writer finishes the append: exactly the completed record
        # arrives, no duplicate of the earlier ones.
        _write_lines(path, records + [_record(2)])
        assert tail.poll() == [_record(2)]
        assert tail.completed() == 3

    def test_terminated_garbage_stops_consumption(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(_record(0), sort_keys=True) + "\n")
            handle.write("{torn-but-terminated\n")
            handle.write(json.dumps(_record(1), sort_keys=True) + "\n")
        tail = JournalTail(path)
        # Only the clean prefix: the reader never guesses past damage.
        assert tail.poll() == [_record(0)]
        assert tail.poll() == []


class TestConcurrentAppend:
    def test_reader_sees_monotone_prefix_of_live_writer(self, tmp_path):
        path = tmp_path / "live.jsonl"
        total = 200
        stop = threading.Event()
        observed = []

        def writer():
            journal = SweepJournal(path, fsync_interval=7)
            for index in range(total):
                journal.append(_record(index))
            journal.close()
            stop.set()

        def reader():
            tail = JournalTail(path)
            while not stop.is_set():
                observed.extend(tail.poll())
            observed.extend(tail.poll())  # final catch-up

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=reader),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        # Exactly every record, in order, exactly once.
        assert observed == [_record(index) for index in range(total)]


class TestFlushBoundaries:
    @pytest.mark.parametrize("flush", ["1", "5", "1000"])
    def test_sweep_journal_streams_under_any_fsync_batching(
        self, tmp_path, monkeypatch, flush
    ):
        monkeypatch.setenv("REPRO_JOURNAL_FLUSH", flush)
        cache = ResultCache(tmp_path)
        jobs = _jobs(6)
        path = cache.root / "journals" / f"{sweep_id(jobs)}.jsonl"
        tail = JournalTail(path)

        seen = [tail.poll()]  # before the sweep: nothing
        run_jobs(jobs, workers=1, cache=cache)
        seen.append(tail.poll())

        assert seen[0] == []
        events = [record["event"] for record in seen[1]]
        assert events[0] == "sweep_start"
        assert events.count("job_done") == 6
        assert events[-1] == "sweep_complete"
        assert tail.progress() == {"completed": 6, "total": 6, "done": True}

        # A second tail from scratch replays the identical sequence:
        # the journal itself is complete regardless of fsync batching.
        replay = JournalTail(path)
        assert replay.poll() == tail.records

    def test_mid_sweep_polls_grow_monotonically(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL_FLUSH", "3")
        cache = ResultCache(tmp_path)
        jobs = _jobs(8)
        path = cache.root / "journals" / f"{sweep_id(jobs)}.jsonl"
        tail = JournalTail(path)
        lengths = []

        original = SweepJournal.append

        def spying_append(self, record):
            original(self, record)
            if self.path == path:
                tail.poll()
                lengths.append(len(tail.records))

        monkeypatch.setattr(SweepJournal, "append", spying_append)
        run_jobs(jobs, workers=1, cache=cache)

        # Polled after every append: lengths never decrease and records
        # arrive in journal order (flushed per append even when fsync is
        # batched, so a live reader is at most one append behind).
        assert lengths == sorted(lengths)
        assert tail.records == SweepJournal.load(path)
        assert tail.completed() == 8 and tail.done()
