"""Property validation of the QARMA implementation.

Official test vectors are unavailable offline (DESIGN.md substitution
note), so the cipher is held to the properties a tweakable PRP must have:
exact invertibility for every (key, tweak), strong diffusion from
plaintext/tweak/key changes, and statistical balance.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.qarma import Qarma, Qarma64, Qarma128

KEY64 = bytes(range(16))
KEY128 = bytes(range(32))


@pytest.fixture(scope="module")
def q64():
    return Qarma64(KEY64)


@pytest.fixture(scope="module")
def q128():
    return Qarma128(KEY128)


class TestConstruction:
    def test_block_sizes(self, q64, q128):
        assert q64.block_bits == 64
        assert q128.block_bits == 128

    def test_default_rounds_match_paper(self, q128):
        # PT-Guard cites an 18-round QARMA-128: 2r + 2 with r = 8.
        assert 2 * q128.rounds + 2 == 18

    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            Qarma64(bytes(15))
        with pytest.raises(ValueError):
            Qarma128(bytes(31))

    def test_cell_bits_restricted(self):
        with pytest.raises(ValueError):
            Qarma(bytes(32), cell_bits=6)

    def test_rounds_bounds(self):
        with pytest.raises(ValueError):
            Qarma(bytes(32), cell_bits=8, rounds=0)
        with pytest.raises(ValueError):
            Qarma(bytes(32), cell_bits=8, rounds=99)


class TestInvertibility:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
    def test_qarma64_roundtrip(self, plaintext, tweak):
        cipher = Qarma64(KEY64)
        assert cipher.decrypt(cipher.encrypt(plaintext, tweak), tweak) == plaintext

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**128 - 1), st.integers(0, 2**128 - 1))
    def test_qarma128_roundtrip(self, plaintext, tweak):
        cipher = Qarma128(KEY128)
        assert cipher.decrypt(cipher.encrypt(plaintext, tweak), tweak) == plaintext

    def test_block_range_enforced(self, q64):
        with pytest.raises(ValueError):
            q64.encrypt(1 << 64)
        with pytest.raises(ValueError):
            q64.encrypt(-1)


class TestDiffusion:
    def _avalanche(self, cipher, flips=64, trials=30):
        rng = random.Random(5)
        total = 0
        for _ in range(trials):
            plaintext = rng.getrandbits(cipher.block_bits)
            bit = rng.randrange(cipher.block_bits)
            a = cipher.encrypt(plaintext, 0)
            b = cipher.encrypt(plaintext ^ (1 << bit), 0)
            total += bin(a ^ b).count("1")
        return total / trials

    def test_plaintext_avalanche_64(self, q64):
        mean = self._avalanche(q64)
        assert 22 <= mean <= 42  # ~half of 64 bits

    def test_plaintext_avalanche_128(self, q128):
        mean = self._avalanche(q128)
        assert 48 <= mean <= 80  # ~half of 128 bits

    def test_tweak_changes_output(self, q128):
        plaintext = 0x0123456789ABCDEF_FEDCBA9876543210
        outputs = {q128.encrypt(plaintext, tweak) for tweak in range(16)}
        assert len(outputs) == 16

    def test_key_changes_output(self):
        a = Qarma128(bytes(32)).encrypt(42)
        b = Qarma128(bytes(31) + b"\x01").encrypt(42)
        assert a != b

    def test_single_tweak_bit_avalanche(self, q128):
        plaintext = 7
        a = q128.encrypt(plaintext, 0)
        b = q128.encrypt(plaintext, 1)
        assert bin(a ^ b).count("1") >= 30


class TestByteInterface:
    def test_encrypt_bytes_roundtrip_shape(self, q128):
        out = q128.encrypt_bytes(bytes(16), b"tweak")
        assert len(out) == 16
        assert out != bytes(16)

    def test_encrypt_bytes_length_enforced(self, q128):
        with pytest.raises(ValueError):
            q128.encrypt_bytes(bytes(15))


class TestStatistics:
    def test_output_bits_balanced(self, q128):
        """Each output bit should be ~50% ones over a counter input set."""
        ones = [0] * 128
        trials = 200
        for i in range(trials):
            out = q128.encrypt(i)
            for bit in range(128):
                ones[bit] += (out >> bit) & 1
        for bit in range(128):
            assert 0.3 <= ones[bit] / trials <= 0.7, f"bit {bit} biased"
