"""Tests for the set-associative cache and its LRU behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig
from repro.common.errors import ConfigurationError
from repro.cache.cache import Cache

SMALL = CacheConfig("test", size_bytes=4 * 64 * 2, associativity=2, hit_latency=1)
# 4 sets x 2 ways x 64 B lines.


def addr(set_index, tag):
    return ((tag << 2) | set_index) << 6


class TestConfig:
    def test_geometry(self):
        assert SMALL.num_sets == 4

    def test_indivisible_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("bad", size_bytes=100, associativity=3, hit_latency=1)


class TestBasicOps:
    def test_miss_then_hit(self):
        cache = Cache(SMALL)
        assert cache.lookup(addr(0, 1)) is None
        cache.fill(addr(0, 1), b"a" * 64)
        line = cache.lookup(addr(0, 1))
        assert line is not None and line.data == b"a" * 64

    def test_sets_isolate(self):
        cache = Cache(SMALL)
        cache.fill(addr(0, 1), b"a" * 64)
        assert cache.lookup(addr(1, 1)) is None

    def test_write_hit_dirties(self):
        cache = Cache(SMALL)
        cache.fill(addr(0, 1), b"a" * 64)
        assert cache.write_hit(addr(0, 1), b"b" * 64)
        line = cache.lookup(addr(0, 1))
        assert line.dirty and line.data == b"b" * 64

    def test_write_miss_returns_false(self):
        cache = Cache(SMALL)
        assert not cache.write_hit(addr(0, 1), b"b" * 64)

    def test_refill_merges_dirty(self):
        cache = Cache(SMALL)
        cache.fill(addr(0, 1), b"a" * 64, dirty=True)
        cache.fill(addr(0, 1), b"b" * 64)  # clean refill keeps dirty state
        victim = cache.invalidate(addr(0, 1))
        assert victim is not None and victim.data == b"b" * 64


class TestLRU:
    def test_lru_eviction_order(self):
        cache = Cache(SMALL)
        cache.fill(addr(0, 1), b"1" * 64)
        cache.fill(addr(0, 2), b"2" * 64)
        victim = cache.fill(addr(0, 3), b"3" * 64)
        assert victim is not None and victim.address == addr(0, 1)

    def test_lookup_refreshes_recency(self):
        cache = Cache(SMALL)
        cache.fill(addr(0, 1), b"1" * 64)
        cache.fill(addr(0, 2), b"2" * 64)
        cache.lookup(addr(0, 1))  # 1 becomes MRU
        victim = cache.fill(addr(0, 3), b"3" * 64)
        assert victim.address == addr(0, 2)

    def test_clean_victim_not_dirty(self):
        cache = Cache(SMALL)
        cache.fill(addr(0, 1), b"1" * 64)
        cache.fill(addr(0, 2), b"2" * 64)
        victim = cache.fill(addr(0, 3), b"3" * 64)
        assert not victim.dirty

    def test_dirty_victim_flagged(self):
        cache = Cache(SMALL)
        cache.fill(addr(0, 1), b"1" * 64, dirty=True)
        cache.fill(addr(0, 2), b"2" * 64)
        victim = cache.fill(addr(0, 3), b"3" * 64)
        assert victim.dirty and victim.data == b"1" * 64


class TestMaintenance:
    def test_invalidate_returns_dirty(self):
        cache = Cache(SMALL)
        cache.fill(addr(0, 1), b"1" * 64, dirty=True)
        victim = cache.invalidate(addr(0, 1))
        assert victim is not None and victim.dirty
        assert cache.invalidate(addr(0, 1)) is None

    def test_invalidate_clean_returns_none(self):
        cache = Cache(SMALL)
        cache.fill(addr(0, 1), b"1" * 64)
        assert cache.invalidate(addr(0, 1)) is None
        assert not cache.contains(addr(0, 1))

    def test_flush_returns_all_dirty(self):
        cache = Cache(SMALL)
        cache.fill(addr(0, 1), b"1" * 64, dirty=True)
        cache.fill(addr(1, 1), b"2" * 64)
        cache.fill(addr(2, 1), b"3" * 64, dirty=True)
        dirty = cache.flush_all()
        assert {v.address for v in dirty} == {addr(0, 1), addr(2, 1)}
        assert cache.resident_lines == 0


class TestInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 30), st.booleans()), max_size=100))
    def test_capacity_never_exceeded(self, operations):
        """Property: no set ever holds more than `associativity` lines,
        and fills always land."""
        cache = Cache(SMALL)
        for tag, dirty in operations:
            cache.fill(addr(tag % 4, tag), bytes(64), dirty=dirty)
            assert cache.contains(addr(tag % 4, tag))
        assert cache.resident_lines <= 8

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=60))
    def test_victim_plus_resident_conserve_lines(self, tags):
        """Property: every fill's victim was resident immediately before."""
        cache = Cache(SMALL)
        resident = set()
        for tag in tags:
            address = addr(tag % 4, tag)
            if cache.contains(address):
                cache.fill(address, bytes(64))
                continue
            victim = cache.fill(address, bytes(64))
            if victim is not None:
                assert victim.address in resident
                resident.discard(victim.address)
            resident.add(address)
        assert resident == {
            a for a in resident if cache.contains(a)
        }
