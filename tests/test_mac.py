"""Tests for the line-MAC layer (QARMA, SipHash, BLAKE2, pseudo)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.mac import (
    Blake2LineMAC,
    PseudoLineMAC,
    QarmaLineMAC,
    SipHashLineMAC,
    derive_key,
    make_line_mac,
)

LINE = bytes(range(64))
ZERO = bytes(64)


def all_macs():
    return [
        QarmaLineMAC(bytes(range(32))),
        SipHashLineMAC(bytes(range(16))),
        Blake2LineMAC(bytes(range(32))),
        PseudoLineMAC(bytes(range(16))),
    ]


class TestCommonProperties:
    @pytest.mark.parametrize("mac", all_macs(), ids=lambda m: type(m).__name__)
    def test_deterministic(self, mac):
        assert mac.compute(LINE, 0x1000) == mac.compute(LINE, 0x1000)

    @pytest.mark.parametrize("mac", all_macs(), ids=lambda m: type(m).__name__)
    def test_address_binding(self, mac):
        assert mac.compute(LINE, 0x1000) != mac.compute(LINE, 0x1040)

    @pytest.mark.parametrize("mac", all_macs(), ids=lambda m: type(m).__name__)
    def test_data_binding(self, mac):
        other = bytes([LINE[0] ^ 1]) + LINE[1:]
        assert mac.compute(LINE, 0x1000) != mac.compute(other, 0x1000)

    @pytest.mark.parametrize("mac", all_macs(), ids=lambda m: type(m).__name__)
    def test_tag_width(self, mac):
        assert 0 <= mac.compute(LINE, 0) < 2**96

    @pytest.mark.parametrize("mac", all_macs(), ids=lambda m: type(m).__name__)
    def test_line_length_enforced(self, mac):
        with pytest.raises(ValueError):
            mac.compute(bytes(63), 0)


class TestQarmaLineMAC:
    def test_identical_chunks_do_not_cancel(self):
        """Regression: per-chunk addresses keep the four cipher inputs
        distinct, so XOR-combining identical chunks never yields 0."""
        mac = QarmaLineMAC(bytes(range(32)))
        assert mac.compute(ZERO, 0x2000) != 0

    def test_key_length(self):
        with pytest.raises(ValueError):
            QarmaLineMAC(bytes(16))

    def test_reduced_width_64(self):
        mac = QarmaLineMAC(bytes(range(32)), mac_bits=64)
        assert mac.compute(LINE, 0) < 2**64


class TestKeyDerivation:
    def test_length(self):
        assert len(derive_key(b"secret", "p", 32)) == 32
        assert len(derive_key(b"secret", "p", 100)) == 100

    def test_purpose_separation(self):
        assert derive_key(b"s", "a", 16) != derive_key(b"s", "b", 16)

    def test_secret_separation(self):
        assert derive_key(b"s1", "a", 16) != derive_key(b"s2", "a", 16)

    def test_deterministic(self):
        assert derive_key(b"s", "a", 16) == derive_key(b"s", "a", 16)


class TestFactory:
    @pytest.mark.parametrize("algo", ["qarma", "siphash", "blake2", "pseudo"])
    def test_algorithms(self, algo):
        mac = make_line_mac(algo, b"secret", 96)
        assert mac.compute(LINE, 0) < 2**96

    def test_epoch_changes_key(self):
        a = make_line_mac("blake2", b"secret", 96, epoch=0)
        b = make_line_mac("blake2", b"secret", 96, epoch=1)
        assert a.compute(LINE, 0) != b.compute(LINE, 0)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            make_line_mac("md5", b"secret")


class TestBlake2Distribution:
    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=64, max_size=64), st.binary(min_size=64, max_size=64))
    def test_distinct_lines_distinct_tags(self, a, b):
        mac = Blake2LineMAC(bytes(range(32)))
        if a != b:
            assert mac.compute(a, 0) != mac.compute(b, 0)

    def test_tags_look_uniform(self):
        mac = Blake2LineMAC(bytes(range(32)))
        tags = [mac.compute(LINE, 64 * i) for i in range(256)]
        ones = sum(bin(t).count("1") for t in tags) / len(tags)
        assert 40 <= ones <= 56  # mean weight of a 96-bit uniform tag is 48
