"""Tests for the DoS / OS-response analysis (Sec IV-G discussion)."""

import pytest

from repro.analysis.dos_eval import DoSExperiment, compare_policies


class TestPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            DoSExperiment("ignore_it")

    def test_kill_victim_causes_repeated_kills(self):
        outcome = DoSExperiment("kill_victim", rounds=10).run()
        assert outcome.victim_kills >= 3  # the DoS the paper warns about
        assert outcome.availability < 1.0

    def test_remap_restores_service(self):
        outcome = DoSExperiment("remap_victim", rounds=10).run()
        assert outcome.remaps > 0
        # Remapping converts most kills into successful retries.
        assert outcome.successful_accesses > outcome.victim_kills

    def test_kill_aggressor_ends_the_attack(self):
        outcome = DoSExperiment("kill_aggressor", rounds=10).run()
        assert outcome.attacker_killed
        assert outcome.successful_accesses >= 10  # clean runs afterwards

    def test_compare_policies_ranks_as_expected(self):
        """Naive kill-the-victim is the worst response (the DoS the paper
        warns about); remapping or removing the aggressor restores
        availability."""
        outcomes = {o.policy: o for o in compare_policies(rounds=10)}
        worst = outcomes["kill_victim"].availability
        assert outcomes["remap_victim"].availability > worst + 0.3
        assert outcomes["kill_aggressor"].availability > worst + 0.3
