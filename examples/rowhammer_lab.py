#!/usr/bin/env python3
"""Rowhammer lab: watch the fault model and mitigations interact.

Walks through the DRAM substrate at eye level: activations depositing
disturbance, the Rowhammer threshold, true-/anti-cell polarity, victim
refreshes — and the Half-Double effect where a defense's own refreshes
become the hammer.

Run:  python examples/rowhammer_lab.py
"""

from repro import RowhammerProfile, build_system
from repro.attacks.defenses import TRR
from repro.attacks.hammer import HammerAttack


def banner(text: str) -> None:
    print(f"\n=== {text} {'=' * max(0, 58 - len(text))}")


def fresh_rig(mitigation=None, threshold=100):
    profile = RowhammerProfile("lab", threshold=threshold, flip_probability=0.05)
    system = build_system(rowhammer=profile, seed=8)
    system.dram.mitigation = mitigation
    victim = (0, 0, 0, 1000)
    for address in system.dram.addresses_in_row(victim):
        system.memory.write_line(address, b"\x5a" * 64)  # 01011010: both polarities
    return system, HammerAttack(system.dram), victim


def main() -> None:
    banner("1. Disturbance accumulates; threshold crossings flip bits")
    system, attack, victim = fresh_rig()
    model = system.dram.rowhammer
    report = attack.double_sided(victim[3], iterations=40)
    print(f"after 40 double-sided pairs: disturbance={model.disturbance(victim):.0f}"
          f" / threshold {model.profile.threshold} -> flips: {len(report.flips)}")
    report = attack.double_sided(victim[3], iterations=20)
    victim_flips = [f for f in system.dram.bit_flips if f.row_key == victim]
    print(f"after 20 more: disturbance={model.disturbance(victim):.0f}"
          f" -> victim flips: {len(victim_flips)}")
    directions = {}
    for flip in victim_flips:
        directions[flip.direction] = directions.get(flip.direction, 0) + 1
    print(f"polarity split (true 1->0 vs anti 0->1): {directions}")

    banner("2. A TRR defense refreshes victims in time...")
    system, attack, victim = fresh_rig(
        TRR(rows_per_bank=32768, sampler_size=4, mitigation_interval=25)
    )
    attack.double_sided(victim[3], iterations=400)
    flips = [f for f in system.dram.bit_flips if f.row_key == victim]
    print(f"double-sided x400 under TRR: victim flips = {len(flips)} "
          f"(refreshes issued: {system.dram.mitigation.refreshes_issued})")

    banner("3. ...but Half-Double turns those refreshes into a weapon")
    system, attack, victim = fresh_rig(
        TRR(rows_per_bank=32768, sampler_size=4, mitigation_interval=25)
    )
    report = attack.half_double(victim[3], iterations=1500)
    flips = [f for f in system.dram.bit_flips if f.row_key == victim]
    print(f"half-double (aggressors at distance 2) under TRR: "
          f"victim flips = {len(flips)}")
    print(f"mitigation refreshes that did the hammering: "
          f"{system.dram.mitigation.refreshes_issued}")

    banner("4. Without any defense, distance-2 alone cannot flip")
    system, attack, victim = fresh_rig(mitigation=None)
    attack.half_double(victim[3], iterations=1500)
    flips = [f for f in system.dram.bit_flips if f.row_key == victim]
    print(f"half-double with no defense: victim flips = {len(flips)} "
          "(direct distance-2 coupling is ~2000x weaker)")

    banner("5. The real thresholds this models")
    for profile in (RowhammerProfile.ddr3_2014(), RowhammerProfile.ddr4_2020(),
                    RowhammerProfile.lpddr4_2020()):
        budget = profile.activation_budget()
        print(f"{profile.name:14s} RTH={profile.threshold:>7,} "
              f"p_flip={profile.flip_probability:.3f} "
              f"(budget {budget:,} ACTs per 64 ms window -> "
              f"{budget // profile.threshold}x threshold)")


if __name__ == "__main__":
    main()
