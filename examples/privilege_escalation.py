#!/usr/bin/env python3
"""The paper's Figure-1/3 exploit, end to end, with and without PT-Guard.

Chain: spray page tables -> one Rowhammer bit-flip makes an attacker PTE
self-referential -> the attacker rewrites a PTE through its own mapping
-> arbitrary physical memory (a kernel secret) is exfiltrated.

On the unprotected baseline the chain completes and prints the stolen
secret. With PT-Guard, the tampered walk raises PTECheckFailed and the
chain dies at step 2. With correction enabled, the flip is repaired and
the attacker does not even get a detection signal to iterate on.

Run:  python examples/privilege_escalation.py
"""

from repro import PTGuardConfig, build_system
from repro.attacks.exploit import PrivilegeEscalationExploit


def banner(text: str) -> None:
    print(f"\n=== {text} {'=' * max(0, 60 - len(text))}")


def describe(outcome) -> None:
    print(f"  flip applied:             {outcome.flip_applied}")
    print(f"  detected (PTECheckFailed):{outcome.detected}")
    print(f"  transparently corrected:  {outcome.corrected}")
    print(f"  tampered PTE consumed:    {outcome.tampered_pte_consumed}")
    print(f"  self-referential PTE:     {outcome.self_reference_achieved}")
    if outcome.kernel_memory_read:
        print(f"  KERNEL MEMORY STOLEN:     {outcome.kernel_memory_read[:24]!r}...")
    else:
        print("  kernel memory stolen:     no")


def main() -> None:
    banner("Unprotected baseline")
    exploit = PrivilegeEscalationExploit(build_system(), num_pages=2048)
    outcome = exploit.attempt()
    describe(outcome)
    assert outcome.escalated, "baseline should be exploitable"

    banner("PT-Guard (detection)")
    exploit = PrivilegeEscalationExploit(
        build_system(ptguard=PTGuardConfig()), num_pages=2048
    )
    outcome = exploit.attempt()
    describe(outcome)
    assert outcome.detected and not outcome.escalated

    banner("PT-Guard (detection + best-effort correction)")
    exploit = PrivilegeEscalationExploit(
        build_system(ptguard=PTGuardConfig(correction_enabled=True)), num_pages=2048
    )
    outcome = exploit.attempt()
    describe(outcome)
    assert outcome.corrected and not outcome.escalated

    banner("Metadata tampering (user/supervisor bit, Sec II-C)")
    meta = PrivilegeEscalationExploit(build_system(), num_pages=64).tamper_metadata_bit()
    print("baseline: kernel page became user-accessible:",
          meta.tampered_pte_consumed)
    meta = PrivilegeEscalationExploit(
        build_system(ptguard=PTGuardConfig()), num_pages=64
    ).tamper_metadata_bit()
    print("PT-Guard: tampering detected:", meta.detected)

    print("\nInvariant held: no PTE cacheline with bit flips was ever "
          "consumed on a page-table walk under PT-Guard (Sec IV-G).")


if __name__ == "__main__":
    main()
