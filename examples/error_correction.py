#!/usr/bin/env python3
"""Deep dive into PT-Guard's best-effort correction (paper Section VI).

Walks through every guess strategy with hand-built PTE cachelines:

1. soft-matching tolerates faults in the MAC itself;
2. flip-and-check repairs any single data-bit flip;
3. almost-zero PTEs are reset (Insight 1: 64 % of PTEs are zero);
4. flags are repaired by majority vote (Insight 3: uniform flags);
5. PFNs are repaired by enforcing contiguity (Insight 2: 24 % contiguous).

Run:  python examples/error_correction.py
"""

import random

from repro.common.config import PTGuardConfig
from repro.core import pattern
from repro.core.guard import PTGuard
from repro.mmu.pte import make_x86_pte

LINE_ADDRESS = 0x123440


def fresh_guard() -> PTGuard:
    return PTGuard(
        PTGuardConfig(correction_enabled=True, identifier_enabled=True),
        mac_algorithm="blake2",
    )


def make_pte_line(base_pfn: int, present: int = 8) -> bytes:
    """A realistic PTE cacheline: contiguous PFNs, uniform flags."""
    ptes = [
        make_x86_pte(base_pfn + i, user=True, no_execute=True) if i < present else 0
        for i in range(8)
    ]
    return pattern.join_ptes(ptes)


def demo(title: str, guard: PTGuard, stored: bytes, corrupt) -> None:
    faulty = corrupt(bytearray(stored))
    outcome = guard.process_read(LINE_ADDRESS, bytes(faulty), is_pte=True)
    step = (outcome.correction.winning_step or "-") if outcome.correction else "exact match"
    guesses = outcome.correction.guesses_used if outcome.correction else 0
    status = "corrected" if outcome.corrected else (
        "DETECTED (uncorrectable)" if outcome.pte_check_failed else "clean"
    )
    print(f"{title:42s} -> {status:24s} strategy={step:22s} guesses={guesses}")


def main() -> None:
    guard = fresh_guard()
    line = make_pte_line(0x4000)
    stored = guard.process_write(LINE_ADDRESS, line).stored_line
    print(f"correction budget G_max = {guard.correction.max_guesses} guesses "
          f"(paper: 372)\n")

    rng = random.Random(1)

    demo("1 flip in a PFN", guard, stored,
         lambda b: _flip(b, pte=2, bit=17))
    demo("1 flip in a flag (writable)", guard, stored,
         lambda b: _flip(b, pte=5, bit=1))
    demo("2 flips in the MAC field only", guard, stored,
         lambda b: _flip(_flip(b, pte=1, bit=45), pte=6, bit=50))
    demo("1 flip in the identifier field", guard, stored,
         lambda b: _flip(b, pte=3, bit=55))
    demo("same flag flipped in one PTE", guard, stored,
         lambda b: _flip(b, pte=0, bit=63))
    demo("PFN flips in two PTEs (contiguity)", guard, stored,
         lambda b: _flip(_flip(b, pte=1, bit=13), pte=4, bit=16))
    demo("flag+PFN flips (combined strategies)", guard, stored,
         lambda b: _flip(_flip(b, pte=1, bit=2), pte=6, bit=14))

    # Zero-PTE reset: a line that is mostly zero entries.
    sparse = make_pte_line(0x9000, present=2)
    stored_sparse = guard.process_write(LINE_ADDRESS + 64, sparse).stored_line

    def corrupt_zeros(b):
        for _ in range(3):  # scatter flips over the zero PTEs
            pte = rng.randrange(3, 8)
            b[pte * 8 + rng.randrange(5)] ^= 1 << rng.randrange(8)
        return b

    faulty = corrupt_zeros(bytearray(stored_sparse))
    outcome = guard.process_read(LINE_ADDRESS + 64, bytes(faulty), is_pte=True)
    print(f"{'3 flips across zero PTEs':42s} -> "
          f"{'corrected' if outcome.corrected else 'uncorrectable':24s} "
          f"strategy={outcome.correction.winning_step}")

    # Beyond correction: a heavy tamper is still *detected*.
    def massacre(b):
        for _ in range(60):
            b[rng.randrange(64)] ^= 1 << rng.randrange(8)
        return b

    demo("60 random flips (attack-scale)", guard, stored, massacre)

    # The security trade (Sec VI-E): correction costs effective MAC bits.
    from repro.core import security

    print("\nsecurity cost of fault tolerance (Eq 1):")
    for k in (0, 1, 4):
        bits = security.effective_mac_bits(96, k, 372)
        print(f"  k={k}: effective MAC {bits:.1f} bits, "
              f"time-to-forgery {security.years_to_attack(96, k, 372):.1e} years")


def _flip(buffer: bytearray, pte: int, bit: int) -> bytearray:
    buffer[pte * 8 + bit // 8] ^= 1 << (bit % 8)
    return buffer


if __name__ == "__main__":
    main()
