#!/usr/bin/env python3
"""Why prior defenses break — the paper's Sections II and VIII as code.

Layer 1: hammering patterns vs activation-tracking mitigations on the
DRAM fault model (TRRespass sampler overflow, Half-Double's weaponised
victim refreshes, threshold under-estimation).

Layer 2: PTE tampering vs page-table protections (SecWalk's 4-flip EDC,
monotonic pointers' metadata blindness, PT-Guard's cryptographic MAC).

Run:  python examples/defense_comparison.py        (~30 s)
"""

from repro.analysis.attack_matrix import run_consumption_matrix, run_flip_matrix
from repro.analysis.reporting import banner, format_table


def main() -> None:
    print(banner("Layer 1: can the pattern flip bits despite the mitigation?"))
    rows = []
    for cell in run_flip_matrix():
        if cell.defense == "TRR" and cell.attack == "many-sided":
            verdict = "BREACHED (sampler overflow)" if cell.any_flips else "held"
        elif cell.attack == "half-double" and cell.victim_flipped:
            verdict = "BREACHED (its own refreshes hammered the victim)"
        elif cell.victim_flipped or cell.any_flips:
            verdict = "BREACHED"
        else:
            verdict = "held"
        rows.append(
            (cell.defense, cell.attack, verdict, cell.mitigation_refreshes)
        )
    print(format_table(["defense", "attack", "verdict", "victim refreshes"], rows))

    print()
    print(banner("Layer 2: does the page-table protection stop the tampering?"))
    print(
        format_table(
            ["protection", "tampering", "stopped?", "why"],
            [
                (c.protection, c.scenario, "yes" if c.prevented else "NO", c.note)
                for c in run_consumption_matrix()
            ],
        )
    )
    print()
    print("Summary: every activation-tracking defense has a breaching pattern;")
    print("every prior PTE protection has a blind spot; PT-Guard's MAC check")
    print("catches arbitrary tampering regardless of how the flips were made.")


if __name__ == "__main__":
    main()
