#!/usr/bin/env python3
"""Quickstart: protect page tables with PT-Guard, tamper, detect, correct.

Builds the paper's Table-III machine with PT-Guard (correction enabled),
creates a process with real 4-level page tables in simulated DRAM, then
plays the adversary: flips bits in a stored PTE cacheline and watches the
memory controller catch (and repair) the tampering during page walks.

Run:  python examples/quickstart.py
"""

from repro import PTEIntegrityException, PTGuardConfig, build_system
from repro.common.config import CACHELINE_BYTES, PAGE_BYTES


def main() -> None:
    # 1. A machine with PT-Guard in the memory controller.
    system = build_system(ptguard=PTGuardConfig(correction_enabled=True))
    kernel = system.kernel
    guard = system.guard
    assert guard is not None
    print(f"machine up: 4 GB DDR4, PT-Guard SRAM budget {guard.sram_bytes} bytes")

    # 2. A process with a 64-page mapping, demand-paged in.
    process = kernel.create_process("victim")
    vma = kernel.mmap(process, num_pages=64, name="heap", populate=True)
    physical = kernel.access_virtual(process, vma.start + 0x1234)
    print(f"VA {vma.start + 0x1234:#x} -> PA {physical:#x} (translation works)")

    # 3. Where does the leaf PTE live in DRAM? (The Rowhammer target.)
    entry_address = process.page_table.leaf_entry_address(vma.start)
    line_address = entry_address & ~(CACHELINE_BYTES - 1)
    stored = system.memory.read_line(line_address)
    print(f"leaf PTE at PA {entry_address:#x}; its cacheline carries an "
          f"embedded 96-bit MAC (stored bytes are *not* the raw PTEs)")

    # 4. Single bit-flip (a classic Rowhammer fault): PT-Guard corrects it
    #    transparently — the process never notices.
    pfn_bit = (entry_address - line_address) * 8 + 20  # a PFN bit of PTE 0
    system.memory.flip_bit(line_address, pfn_bit)
    kernel.walker.flush_all()  # drop the TLB so the walk re-reads DRAM
    physical_again = kernel.access_virtual(process, vma.start)
    corrected = guard.stats.get("pte_corrections")
    print(f"after 1 flip: walk still returns PA {physical_again:#x}, "
          f"corrections performed: {corrected}")

    # 5. A heavy multi-bit attack: detection is guaranteed, the walk never
    #    consumes the tampered PTE, and the OS gets PTECheckFailed.
    import random

    rng = random.Random(0)
    for _ in range(40):
        system.memory.flip_bit(line_address, rng.randrange(512))
    kernel.walker.flush_all()
    try:
        kernel.access_virtual(process, vma.start)
        print("ERROR: tampering was consumed!")
    except PTEIntegrityException as exc:
        print(f"40-flip tamper detected: {exc}")
        print(f"kernel incident log: {kernel.incidents[-1]}")

    print("\nPT-Guard statistics:")
    for key, value in guard.stats.as_dict().items():
        print(f"  {key:28s} {value}")


if __name__ == "__main__":
    main()
