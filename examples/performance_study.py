#!/usr/bin/env python3
"""Performance study: what PT-Guard costs, and why Optimized fixes it.

Reproduces the mechanism behind Figures 6 and 7 on a handful of
workloads: baseline PT-Guard pays the MAC latency on *every* DRAM read,
so slowdown tracks LLC MPKI; the identifier + MAC-zero optimizations
gate the MAC unit to <2 % of reads and flatten the cost.

Run:  python examples/performance_study.py          (~1-2 min)
Scale with REPRO_SCALE=3 for smoother numbers.
"""

import os

from repro.analysis.perf_eval import run_figure6, run_figure7, summarize_figure6
from repro.analysis.reporting import ascii_bars, banner, format_table

WORKLOADS = ["povray", "xz", "mcf", "lbm", "xalancbmk", "pr"]


def main() -> None:
    scale = float(os.environ.get("REPRO_SCALE", "1"))
    mem_ops = int(20_000 * scale)
    warmup = int(12_000 * scale)

    print(banner("Slowdown vs memory intensity (Fig 6 mechanism)"))
    rows = run_figure6(WORKLOADS, mem_ops=mem_ops, warmup_ops=warmup)
    print(
        format_table(
            ["workload", "LLC MPKI", "PT-Guard slowdown %", "Optimized slowdown %"],
            [
                (
                    r.workload,
                    round(r.measured_mpki, 1),
                    round(r.slowdown_percent, 2),
                    round(r.optimized_slowdown_percent or 0.0, 2),
                )
                for r in rows
            ],
        )
    )
    summary = summarize_figure6(rows)
    print(f"\nAMEAN slowdown {summary['amean_slowdown_percent']:.2f}% "
          f"(paper, all 25 workloads: 1.3%); optimized "
          f"{summary.get('optimized_amean_slowdown_percent', 0):.2f}% (paper: 0.2%)")

    print()
    print(banner("slowdown tracks MPKI"))
    print(ascii_bars([r.workload for r in rows],
                     [max(0.0, r.slowdown_percent) for r in rows], unit="%"))

    print()
    print(banner("MAC-latency sensitivity (Fig 7)"))
    points = run_figure7(WORKLOADS[2:], latencies=(5, 10, 20),
                         mem_ops=mem_ops, warmup_ops=warmup)
    print(
        format_table(
            ["design", "MAC latency (cycles)", "avg slowdown %", "worst %"],
            [
                (p.design, p.mac_latency,
                 round(p.average_slowdown_percent, 2),
                 round(p.worst_slowdown_percent, 2))
                for p in points
            ],
        )
    )
    print("\npaper: baseline design scales 0.7% -> 2.6% over 5 -> 20 cycles;")
    print("optimized stays flat (<0.3%) because <2% of DRAM reads touch the MAC unit.")


if __name__ == "__main__":
    main()
